#ifndef MITRA_HDT_HDT_H_
#define MITRA_HDT_HDT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

/// \file hdt.h
/// Hierarchical Data Tree (HDT) — the paper's uniform representation of
/// tree-structured documents (Definition 1, §3).
///
/// An HDT is a rooted tree whose nodes are triples (tag, pos, data):
///  - `tag`  — label of the node (element name / attribute name / JSON key),
///  - `pos`  — the node is the pos'th child with this tag under its parent,
///  - `data` — payload; only leaf nodes carry data, internal nodes are nil.

namespace mitra::hdt {

/// Index of a node inside an Hdt's arena.
using NodeId = int32_t;
/// Interned tag identifier (valid within one Hdt).
using TagId = int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr TagId kInvalidTag = -1;

/// Interns tag strings to dense integer ids for fast comparisons.
class SymbolTable {
 public:
  /// Returns the id for `name`, creating one if necessary.
  TagId Intern(std::string_view name);
  /// Returns the id for `name` if it was interned before, else nullopt.
  std::optional<TagId> Lookup(std::string_view name) const;
  /// Returns the string for an interned id.
  const std::string& Name(TagId id) const { return names_[id]; }
  /// Number of distinct tags interned so far.
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId> ids_;
};

/// One HDT node. Stored by value in the tree's arena; refer to nodes by
/// NodeId, not by pointer (the arena may reallocate while building).
struct Node {
  TagId tag = kInvalidTag;
  /// Index among the preceding siblings that share this tag (0-based).
  int32_t pos = 0;
  NodeId parent = kInvalidNode;
  /// Payload. Meaningful only when `has_data` is true; per Definition 1
  /// only leaves carry data.
  std::string data;
  bool has_data = false;
  /// Provenance: true when this node encodes an XML/HTML *attribute*
  /// (§3 encodes attributes as nested leaf children). The DSL and the
  /// synthesizer never read this — it exists so the XML writer and the
  /// XSLT backend can distinguish `@name` from element children.
  bool is_attribute = false;
  /// Provenance: true when this node encodes a character-data run of a
  /// mixed-content XML/HTML element (§3 encodes such runs as leaf children
  /// tagged `text`). Like is_attribute, the DSL never reads this; the XML
  /// writer uses it to tell a text run apart from a real element that
  /// happens to be named `text`.
  bool is_text_run = false;
  std::vector<NodeId> children;
};

/// An arena-backed hierarchical data tree.
///
/// Build with `AddRoot` / `AddChild`; query with the navigation helpers that
/// mirror the DSL operators of Figure 6 (children / pchildren / descendants
/// on the column side, parent / child on the node-extractor side).
class Hdt {
 public:
  Hdt() = default;

  // --- construction ------------------------------------------------------

  /// Creates the root node. Must be called exactly once, first.
  NodeId AddRoot(std::string_view tag);

  /// Appends a child under `parent`. `pos` is computed automatically as the
  /// number of existing children of `parent` with the same tag.
  /// If `data` is supplied the node is created as a data-carrying leaf.
  NodeId AddChild(NodeId parent, std::string_view tag);
  NodeId AddChild(NodeId parent, std::string_view tag, std::string_view data);

  /// Appends an attribute-encoded leaf child (see Node::is_attribute).
  NodeId AddAttribute(NodeId parent, std::string_view name,
                      std::string_view value);

  /// Appends a text-run leaf child tagged `text` (see Node::is_text_run).
  NodeId AddTextRun(NodeId parent, std::string_view data);

  /// Attaches data to an existing node, making it a data-carrying leaf.
  /// The node must have no children (Definition 1: only leaves hold data).
  void SetLeafData(NodeId id, std::string_view data);

  /// True when the node encodes a source-document attribute.
  bool IsAttribute(NodeId id) const { return nodes_[id].is_attribute; }

  /// True when the node encodes a mixed-content character-data run.
  bool IsTextRun(NodeId id) const { return nodes_[id].is_text_run; }

  // --- basic accessors ----------------------------------------------------

  bool empty() const { return nodes_.empty(); }
  NodeId root() const { return nodes_.empty() ? kInvalidNode : 0; }
  size_t size() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  const std::string& TagName(TagId id) const { return tags_.Name(id); }
  const std::string& NodeTagName(NodeId id) const {
    return tags_.Name(nodes_[id].tag);
  }
  std::optional<TagId> LookupTag(std::string_view name) const {
    return tags_.Lookup(name);
  }
  const SymbolTable& tags() const { return tags_; }

  /// True if the node has no children. Note a leaf may still have no data
  /// (e.g. an empty XML element).
  bool IsLeaf(NodeId id) const { return nodes_[id].children.empty(); }
  /// Data of a node, or empty string for internal / data-less nodes.
  std::string_view Data(NodeId id) const {
    const Node& n = nodes_[id];
    return n.has_data ? std::string_view(n.data) : std::string_view();
  }
  bool HasData(NodeId id) const { return nodes_[id].has_data; }

  // --- navigation (mirrors DSL operator semantics, Fig. 7) ----------------

  /// All children of `id` with the given tag, in document order.
  void ChildrenWithTag(NodeId id, TagId tag, std::vector<NodeId>* out) const;
  /// The child of `id` with the given tag and position, or kInvalidNode.
  NodeId ChildWithTagPos(NodeId id, TagId tag, int32_t pos) const;
  /// All proper descendants of `id` with the given tag, in preorder.
  void DescendantsWithTag(NodeId id, TagId tag, std::vector<NodeId>* out) const;
  /// Parent, or kInvalidNode for the root.
  NodeId Parent(NodeId id) const { return nodes_[id].parent; }

  /// Depth of the node (root = 0).
  int Depth(NodeId id) const;

  /// The set of distinct (tag) and (tag,pos) pairs present in the tree;
  /// used as the DFA alphabet (Fig. 9) and for node-extractor enumeration.
  std::vector<TagId> AllTags() const;
  std::vector<std::pair<TagId, int32_t>> AllTagPosPairs() const;

  /// All data values stored at leaves (the constant pool for predicate
  /// universe rule (4), Fig. 10). Deduplicated, in first-seen order.
  std::vector<std::string> AllDataValues() const;

  /// Number of "elements" as counted in the paper's Table 1 (#Elements):
  /// nodes in the tree.
  size_t NumElements() const { return nodes_.size(); }

  /// Renders the tree as an indented debug string (one node per line).
  std::string ToDebugString() const;

 private:
  NodeId NewNode(NodeId parent, std::string_view tag);

  std::vector<Node> nodes_;
  SymbolTable tags_;
  /// (parent, tag) → number of children with that tag so far; makes pos
  /// assignment O(1) instead of a sibling scan (which is quadratic for
  /// high-fanout parents such as the root of a million-element document).
  std::unordered_map<uint64_t, int32_t> pos_counters_;
};

}  // namespace mitra::hdt

#endif  // MITRA_HDT_HDT_H_
