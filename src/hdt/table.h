#ifndef MITRA_HDT_TABLE_H_
#define MITRA_HDT_TABLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"

/// \file table.h
/// Relational table model. As in the paper (§4), a table is a *bag* of
/// tuples; `column(R, i)` denotes the i'th column. Cells are strings —
/// the data payloads of HDT leaves.

namespace mitra::hdt {

/// A row of cell values.
using Row = std::vector<std::string>;

/// A bag-of-tuples relational table with optional column names.
class Table {
 public:
  Table() = default;
  /// Creates an empty table with `num_cols` unnamed columns.
  explicit Table(size_t num_cols) : num_cols_(num_cols) {}
  /// Creates an empty table with the given column names.
  explicit Table(std::vector<std::string> column_names)
      : num_cols_(column_names.size()),
        column_names_(std::move(column_names)) {}

  /// Builds a table from row literals; all rows must have equal width.
  static Result<Table> FromRows(std::vector<Row> rows);
  /// Convenience overload for brace-literals in tests.
  static Result<Table> FromRows(std::vector<std::string> column_names,
                                std::vector<Row> rows);

  size_t NumCols() const { return num_cols_; }
  size_t NumRows() const { return rows_.size(); }
  bool Empty() const { return rows_.empty(); }

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  void set_column_names(std::vector<std::string> names) {
    column_names_ = std::move(names);
    num_cols_ = column_names_.size();
  }

  const std::vector<Row>& rows() const { return rows_; }
  const Row& row(size_t i) const { return rows_[i]; }

  /// Appends a row; must match NumCols (unless the table is still empty
  /// and width-less, in which case it fixes the width).
  Status AppendRow(Row row);

  /// The values of column `i`, in row order (a bag).
  std::vector<std::string> Column(size_t i) const;
  /// The distinct values of column `i`, in first-seen order.
  std::vector<std::string> DistinctColumn(size_t i) const;

  /// Bag equality: same width and same multiset of rows.
  bool BagEquals(const Table& other) const;
  /// Bag containment: every row of this occurs (with multiplicity) in other.
  bool BagSubsetOf(const Table& other) const;
  /// True if `r` occurs at least once.
  bool ContainsRow(const Row& r) const;

  /// Removes duplicate rows (keeps the first occurrence of each).
  void Dedup();
  /// Sorts rows lexicographically (canonical order for comparisons/tests).
  void SortRows();

  /// Renders as a compact aligned text table for logs and bench output.
  std::string ToString() const;

 private:
  size_t num_cols_ = 0;
  std::vector<std::string> column_names_;
  std::vector<Row> rows_;
};

}  // namespace mitra::hdt

#endif  // MITRA_HDT_TABLE_H_
