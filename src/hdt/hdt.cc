#include "hdt/hdt.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/strings.h"
#include "obs/obs.h"

namespace mitra::hdt {

TagId SymbolTable::Intern(std::string_view name) {
  // Heterogeneous probe: no temporary std::string on the hit path (which
  // is nearly every call during parsing — documents have few distinct
  // tags and millions of elements).
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<TagId> SymbolTable::Lookup(std::string_view name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

NodeId Hdt::NewNode(NodeId parent, std::string_view tag) {
  Thaw();
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.tag = tags_.Intern(tag);
  n.parent = parent;
  if (parent != kInvalidNode) {
    // pos = number of existing same-tag siblings (O(1) via counter).
    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(parent))
                    << 32) |
                   static_cast<uint32_t>(n.tag);
    n.pos = pos_counters_[key]++;
    nodes_.push_back(std::move(n));
    nodes_[parent].children.push_back(id);
  } else {
    nodes_.push_back(std::move(n));
  }
  return id;
}

NodeId Hdt::AddRoot(std::string_view tag) {
  assert(nodes_.empty() && "AddRoot must be called exactly once, first");
  return NewNode(kInvalidNode, tag);
}

NodeId Hdt::AddChild(NodeId parent, std::string_view tag) {
  assert(parent >= 0 && static_cast<size_t>(parent) < nodes_.size());
  return NewNode(parent, tag);
}

NodeId Hdt::AddChild(NodeId parent, std::string_view tag,
                     std::string_view data) {
  NodeId id = AddChild(parent, tag);
  nodes_[id].data = std::string(data);
  nodes_[id].has_data = true;
  return id;
}

NodeId Hdt::AddAttribute(NodeId parent, std::string_view name,
                         std::string_view value) {
  NodeId id = AddChild(parent, name, value);
  nodes_[id].is_attribute = true;
  return id;
}

NodeId Hdt::AddTextRun(NodeId parent, std::string_view data) {
  NodeId id = AddChild(parent, "text", data);
  nodes_[id].is_text_run = true;
  return id;
}

void Hdt::SetLeafData(NodeId id, std::string_view data) {
  Thaw();
  assert(nodes_[id].children.empty() && "only leaves may carry data");
  nodes_[id].data = std::string(data);
  nodes_[id].has_data = true;
}

void Hdt::FreezeIndex(bool compact) {
  if (index_) {
    if (compact && !compact_) {
      // Upgrade in place: the index is already valid, just release the
      // now-redundant per-node child vectors.
      for (Node& n : nodes_) {
        n.children.clear();
        n.children.shrink_to_fit();
      }
      compact_ = true;
    }
    return;
  }
  MITRA_SPAN(span, "hdt/freeze_index");
  auto ix = std::make_shared<FrozenIndex>();
  const size_t n = nodes_.size();
  const size_t num_tags = tags_.size();

  // Preorder interval numbering, iterative DFS in child order (so ranks
  // follow the exact sequence the legacy recursive walk visits).
  ix->pre.assign(n, 0);
  ix->pre_end.assign(n, 0);
  ix->pre_to_node.assign(n, kInvalidNode);
  if (n > 0) {
    int32_t clock = 0;
    std::vector<std::pair<NodeId, size_t>> stack;
    stack.reserve(64);
    ix->pre[0] = clock;
    ix->pre_to_node[clock] = 0;
    ++clock;
    stack.emplace_back(0, 0);
    while (!stack.empty()) {
      auto& [nid, cursor] = stack.back();
      const auto& ch = nodes_[nid].children;
      if (cursor < ch.size()) {
        NodeId c = ch[cursor++];
        ix->pre[c] = clock;
        ix->pre_to_node[clock] = c;
        ++clock;
        stack.emplace_back(c, 0);
      } else {
        ix->pre_end[nid] = clock;
        stack.pop_back();
      }
    }
    assert(static_cast<size_t>(clock) == n && "all nodes reachable");
  }

  // CSR child layout (document order).
  ix->child_offsets.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    ix->child_offsets[i + 1] =
        ix->child_offsets[i] + static_cast<int32_t>(nodes_[i].children.size());
  }
  ix->child_flat.reserve(n > 0 ? n - 1 : 0);
  for (size_t i = 0; i < n; ++i) {
    ix->child_flat.insert(ix->child_flat.end(), nodes_[i].children.begin(),
                          nodes_[i].children.end());
  }

  // Per-(parent, tag) slices: children regrouped by tag (stable, so the
  // document order within each group — and thus pos order — is kept).
  ix->group_offsets.assign(n + 1, 0);
  ix->child_by_tag.reserve(ix->child_flat.size());
  std::vector<NodeId> buf;
  for (size_t i = 0; i < n; ++i) {
    buf.assign(nodes_[i].children.begin(), nodes_[i].children.end());
    std::stable_sort(buf.begin(), buf.end(), [&](NodeId a, NodeId b) {
      return nodes_[a].tag < nodes_[b].tag;
    });
    for (size_t k = 0; k < buf.size();) {
      TagId t = nodes_[buf[k]].tag;
      FrozenIndex::TagGroup g;
      g.tag = t;
      g.begin = static_cast<int32_t>(ix->child_by_tag.size());
      while (k < buf.size() && nodes_[buf[k]].tag == t) {
        assert(nodes_[buf[k]].pos ==
                   static_cast<int32_t>(ix->child_by_tag.size()) - g.begin &&
               "pos equals rank within the (parent,tag) group");
        ix->child_by_tag.push_back(buf[k]);
        ++k;
      }
      g.end = static_cast<int32_t>(ix->child_by_tag.size());
      ix->groups.push_back(g);
    }
    ix->group_offsets[i + 1] = static_cast<int32_t>(ix->groups.size());
  }

  // Per-tag posting lists in preorder-rank order: counting sort by tag,
  // filled by walking ranks ascending — no comparison sort needed.
  ix->posting_offsets.assign(num_tags + 1, 0);
  for (const Node& nd : nodes_) ix->posting_offsets[nd.tag + 1]++;
  for (size_t t = 0; t < num_tags; ++t) {
    ix->posting_offsets[t + 1] += ix->posting_offsets[t];
  }
  ix->postings.assign(n, kInvalidNode);
  ix->posting_pre.assign(n, 0);
  {
    std::vector<int32_t> cursor(ix->posting_offsets.begin(),
                                ix->posting_offsets.end() - 1);
    for (size_t r = 0; r < n; ++r) {
      NodeId nd = ix->pre_to_node[r];
      int32_t& c = cursor[nodes_[nd].tag];
      ix->postings[c] = nd;
      ix->posting_pre[c] = static_cast<int32_t>(r);
      ++c;
    }
  }

  // Leaf-data dictionary, in node-id first-seen order so dictionary order
  // equals AllDataValues() order.
  ix->data_id.assign(n, kInvalidData);
  for (size_t i = 0; i < n; ++i) {
    const Node& nd = nodes_[i];
    if (!nd.has_data) continue;
    auto it = ix->dict_ids.find(std::string_view(nd.data));
    DataId d;
    if (it != ix->dict_ids.end()) {
      d = it->second;
    } else {
      d = static_cast<DataId>(ix->dict_values.size());
      ix->dict_values.push_back(nd.data);
      ix->dict_ids.emplace(nd.data, d);
    }
    ix->data_id[i] = d;
  }
  ix->dict_numbers.assign(ix->dict_values.size(), 0.0);
  ix->dict_is_number.assign(ix->dict_values.size(), 0);
  for (size_t d = 0; d < ix->dict_values.size(); ++d) {
    if (auto num = ParseNumber(ix->dict_values[d])) {
      ix->dict_numbers[d] = *num;
      ix->dict_is_number[d] = 1;
    }
  }

  // Vocabulary, precomputed in the legacy node-id iteration order so the
  // DFA alphabet interning order (and hence synthesis output) is
  // bit-identical frozen or not.
  {
    std::unordered_set<uint64_t> seen;
    for (const Node& nd : nodes_) {
      if (nd.parent == kInvalidNode) continue;
      uint64_t key = (static_cast<uint64_t>(nd.tag) << 32) |
                     static_cast<uint32_t>(nd.pos);
      if (seen.insert(key).second) ix->tag_pos_pairs.emplace_back(nd.tag, nd.pos);
    }
  }

  MITRA_COUNT("hdt/freeze/calls", 1);
  MITRA_COUNT("hdt/freeze/nodes", n);
  MITRA_COUNT("hdt/freeze/dict_entries", ix->dict_values.size());
  index_ = std::move(ix);
  if (compact) {
    for (Node& nd : nodes_) {
      nd.children.clear();
      nd.children.shrink_to_fit();
    }
    compact_ = true;
  }
}

void Hdt::Thaw() {
  if (!index_) return;
  if (compact_) {
    const FrozenIndex& ix = *index_;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i].children.assign(
          ix.child_flat.begin() + ix.child_offsets[i],
          ix.child_flat.begin() + ix.child_offsets[i + 1]);
    }
    compact_ = false;
  }
  index_.reset();
}

const FrozenIndex::TagGroup* Hdt::FindGroup(NodeId id, TagId tag) const {
  const FrozenIndex& ix = *index_;
  const FrozenIndex::TagGroup* first = ix.groups.data() + ix.group_offsets[id];
  const FrozenIndex::TagGroup* last =
      ix.groups.data() + ix.group_offsets[id + 1];
  const FrozenIndex::TagGroup* it = std::lower_bound(
      first, last, tag,
      [](const FrozenIndex::TagGroup& g, TagId t) { return g.tag < t; });
  if (it == last || it->tag != tag) return nullptr;
  return it;
}

std::span<const NodeId> Hdt::ChildrenWithTagSpan(NodeId id, TagId tag) const {
  const FrozenIndex::TagGroup* g = FindGroup(id, tag);
  if (!g) return {};
  return {index_->child_by_tag.data() + g->begin,
          static_cast<size_t>(g->end - g->begin)};
}

std::span<const NodeId> Hdt::DescendantsWithTagSpan(NodeId id,
                                                    TagId tag) const {
  const FrozenIndex& ix = *index_;
  if (tag < 0 || static_cast<size_t>(tag) + 1 >= ix.posting_offsets.size()) {
    return {};
  }
  // Proper descendants of `id` are exactly the nodes with preorder rank in
  // the open interval (pre[id], pre_end[id]); within tag `tag`'s posting
  // list (sorted by rank) that is one contiguous subrange.
  const int32_t lo = ix.pre[id] + 1;
  const int32_t hi = ix.pre_end[id];
  const int32_t* base = ix.posting_pre.data();
  const int32_t* first = base + ix.posting_offsets[tag];
  const int32_t* last = base + ix.posting_offsets[tag + 1];
  const int32_t* b = std::lower_bound(first, last, lo);
  const int32_t* e = std::lower_bound(b, last, hi);
  return {ix.postings.data() + (b - base), static_cast<size_t>(e - b)};
}

void Hdt::ChildrenWithTag(NodeId id, TagId tag,
                          std::vector<NodeId>* out) const {
  if (index_) {
    auto s = ChildrenWithTagSpan(id, tag);
    out->insert(out->end(), s.begin(), s.end());
    return;
  }
  for (NodeId c : nodes_[id].children) {
    if (nodes_[c].tag == tag) out->push_back(c);
  }
}

NodeId Hdt::ChildWithTagPos(NodeId id, TagId tag, int32_t pos) const {
  if (index_) {
    auto s = ChildrenWithTagSpan(id, tag);
    // Within a group the k-th child has pos == k (checked at freeze).
    if (pos < 0 || static_cast<size_t>(pos) >= s.size()) return kInvalidNode;
    return s[pos];
  }
  for (NodeId c : nodes_[id].children) {
    if (nodes_[c].tag == tag && nodes_[c].pos == pos) return c;
  }
  return kInvalidNode;
}

void Hdt::DescendantsWithTag(NodeId id, TagId tag,
                             std::vector<NodeId>* out) const {
  if (index_) {
    auto s = DescendantsWithTagSpan(id, tag);
    out->insert(out->end(), s.begin(), s.end());
    return;
  }
  // Iterative preorder DFS over proper descendants.
  std::vector<NodeId> stack(nodes_[id].children.rbegin(),
                            nodes_[id].children.rend());
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    if (nodes_[cur].tag == tag) out->push_back(cur);
    const auto& ch = nodes_[cur].children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
}

std::optional<DataId> Hdt::LookupDataId(std::string_view value) const {
  if (!index_) return std::nullopt;
  auto it = index_->dict_ids.find(value);
  if (it == index_->dict_ids.end()) return std::nullopt;
  return it->second;
}

int Hdt::Depth(NodeId id) const {
  int d = 0;
  while (nodes_[id].parent != kInvalidNode) {
    id = nodes_[id].parent;
    ++d;
  }
  return d;
}

std::vector<TagId> Hdt::AllTags() const {
  std::vector<TagId> out;
  out.reserve(tags_.size());
  for (TagId t = 0; t < static_cast<TagId>(tags_.size()); ++t) {
    out.push_back(t);
  }
  return out;
}

std::vector<std::pair<TagId, int32_t>> Hdt::AllTagPosPairs() const {
  if (index_) return index_->tag_pos_pairs;
  std::vector<std::pair<TagId, int32_t>> out;
  std::unordered_set<uint64_t> seen;
  for (const Node& n : nodes_) {
    if (n.parent == kInvalidNode) continue;
    uint64_t key = (static_cast<uint64_t>(n.tag) << 32) |
                   static_cast<uint32_t>(n.pos);
    if (seen.insert(key).second) out.emplace_back(n.tag, n.pos);
  }
  return out;
}

std::vector<std::string> Hdt::AllDataValues() const {
  if (index_) return index_->dict_values;
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const Node& n : nodes_) {
    if (n.has_data && seen.insert(n.data).second) out.push_back(n.data);
  }
  return out;
}

namespace {
void DebugRec(const Hdt& t, NodeId id, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(t.NodeTagName(id));
  out->append("[");
  out->append(std::to_string(t.node(id).pos));
  out->append("]");
  if (t.HasData(id)) {
    out->append(" = \"");
    out->append(t.Data(id));
    out->append("\"");
  }
  out->append("\n");
  for (NodeId c : t.Children(id)) DebugRec(t, c, indent + 1, out);
}
}  // namespace

std::string Hdt::ToDebugString() const {
  std::string out;
  if (!nodes_.empty()) DebugRec(*this, root(), 0, &out);
  return out;
}

}  // namespace mitra::hdt
