#include "hdt/hdt.h"

#include <cassert>
#include <unordered_set>

namespace mitra::hdt {

TagId SymbolTable::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<TagId> SymbolTable::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

NodeId Hdt::NewNode(NodeId parent, std::string_view tag) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.tag = tags_.Intern(tag);
  n.parent = parent;
  if (parent != kInvalidNode) {
    // pos = number of existing same-tag siblings (O(1) via counter).
    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(parent))
                    << 32) |
                   static_cast<uint32_t>(n.tag);
    n.pos = pos_counters_[key]++;
    nodes_.push_back(std::move(n));
    nodes_[parent].children.push_back(id);
  } else {
    nodes_.push_back(std::move(n));
  }
  return id;
}

NodeId Hdt::AddRoot(std::string_view tag) {
  assert(nodes_.empty() && "AddRoot must be called exactly once, first");
  return NewNode(kInvalidNode, tag);
}

NodeId Hdt::AddChild(NodeId parent, std::string_view tag) {
  assert(parent >= 0 && static_cast<size_t>(parent) < nodes_.size());
  return NewNode(parent, tag);
}

NodeId Hdt::AddChild(NodeId parent, std::string_view tag,
                     std::string_view data) {
  NodeId id = AddChild(parent, tag);
  nodes_[id].data = std::string(data);
  nodes_[id].has_data = true;
  return id;
}

NodeId Hdt::AddAttribute(NodeId parent, std::string_view name,
                         std::string_view value) {
  NodeId id = AddChild(parent, name, value);
  nodes_[id].is_attribute = true;
  return id;
}

NodeId Hdt::AddTextRun(NodeId parent, std::string_view data) {
  NodeId id = AddChild(parent, "text", data);
  nodes_[id].is_text_run = true;
  return id;
}

void Hdt::SetLeafData(NodeId id, std::string_view data) {
  assert(nodes_[id].children.empty() && "only leaves may carry data");
  nodes_[id].data = std::string(data);
  nodes_[id].has_data = true;
}

void Hdt::ChildrenWithTag(NodeId id, TagId tag,
                          std::vector<NodeId>* out) const {
  for (NodeId c : nodes_[id].children) {
    if (nodes_[c].tag == tag) out->push_back(c);
  }
}

NodeId Hdt::ChildWithTagPos(NodeId id, TagId tag, int32_t pos) const {
  for (NodeId c : nodes_[id].children) {
    if (nodes_[c].tag == tag && nodes_[c].pos == pos) return c;
  }
  return kInvalidNode;
}

void Hdt::DescendantsWithTag(NodeId id, TagId tag,
                             std::vector<NodeId>* out) const {
  // Iterative preorder DFS over proper descendants.
  std::vector<NodeId> stack(nodes_[id].children.rbegin(),
                            nodes_[id].children.rend());
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    if (nodes_[cur].tag == tag) out->push_back(cur);
    const auto& ch = nodes_[cur].children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
}

int Hdt::Depth(NodeId id) const {
  int d = 0;
  while (nodes_[id].parent != kInvalidNode) {
    id = nodes_[id].parent;
    ++d;
  }
  return d;
}

std::vector<TagId> Hdt::AllTags() const {
  std::vector<TagId> out;
  out.reserve(tags_.size());
  for (TagId t = 0; t < static_cast<TagId>(tags_.size()); ++t) {
    out.push_back(t);
  }
  return out;
}

std::vector<std::pair<TagId, int32_t>> Hdt::AllTagPosPairs() const {
  std::vector<std::pair<TagId, int32_t>> out;
  std::unordered_set<uint64_t> seen;
  for (const Node& n : nodes_) {
    if (n.parent == kInvalidNode) continue;
    uint64_t key = (static_cast<uint64_t>(n.tag) << 32) |
                   static_cast<uint32_t>(n.pos);
    if (seen.insert(key).second) out.emplace_back(n.tag, n.pos);
  }
  return out;
}

std::vector<std::string> Hdt::AllDataValues() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const Node& n : nodes_) {
    if (n.has_data && seen.insert(n.data).second) out.push_back(n.data);
  }
  return out;
}

namespace {
void DebugRec(const Hdt& t, NodeId id, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(t.NodeTagName(id));
  out->append("[");
  out->append(std::to_string(t.node(id).pos));
  out->append("]");
  if (t.HasData(id)) {
    out->append(" = \"");
    out->append(t.Data(id));
    out->append("\"");
  }
  out->append("\n");
  for (NodeId c : t.node(id).children) DebugRec(t, c, indent + 1, out);
}
}  // namespace

std::string Hdt::ToDebugString() const {
  std::string out;
  if (!nodes_.empty()) DebugRec(*this, root(), 0, &out);
  return out;
}

}  // namespace mitra::hdt
