#include "hdt/table.h"

#include <algorithm>
#include <map>
#include <set>

namespace mitra::hdt {

Result<Table> Table::FromRows(std::vector<Row> rows) {
  Table t;
  for (auto& r : rows) {
    MITRA_RETURN_IF_ERROR(t.AppendRow(std::move(r)));
  }
  return t;
}

Result<Table> Table::FromRows(std::vector<std::string> column_names,
                              std::vector<Row> rows) {
  Table t(std::move(column_names));
  for (auto& r : rows) {
    MITRA_RETURN_IF_ERROR(t.AppendRow(std::move(r)));
  }
  return t;
}

Status Table::AppendRow(Row row) {
  if (rows_.empty() && num_cols_ == 0) {
    num_cols_ = row.size();
  } else if (row.size() != num_cols_) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) +
        " does not match table width " + std::to_string(num_cols_));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::vector<std::string> Table::Column(size_t i) const {
  std::vector<std::string> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) out.push_back(r[i]);
  return out;
}

std::vector<std::string> Table::DistinctColumn(size_t i) const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const Row& r : rows_) {
    if (seen.insert(r[i]).second) out.push_back(r[i]);
  }
  return out;
}

bool Table::BagEquals(const Table& other) const {
  if (num_cols_ != other.num_cols_ || rows_.size() != other.rows_.size()) {
    return false;
  }
  std::vector<Row> a = rows_, b = other.rows_;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

bool Table::BagSubsetOf(const Table& other) const {
  if (num_cols_ != other.num_cols_) return false;
  std::map<Row, int> counts;
  for (const Row& r : other.rows_) ++counts[r];
  for (const Row& r : rows_) {
    auto it = counts.find(r);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

bool Table::ContainsRow(const Row& r) const {
  return std::find(rows_.begin(), rows_.end(), r) != rows_.end();
}

void Table::Dedup() {
  std::set<Row> seen;
  std::vector<Row> out;
  out.reserve(rows_.size());
  for (Row& r : rows_) {
    if (seen.insert(r).second) out.push_back(std::move(r));
  }
  rows_ = std::move(out);
}

void Table::SortRows() { std::sort(rows_.begin(), rows_.end()); }

std::string Table::ToString() const {
  std::vector<size_t> width(num_cols_, 0);
  for (size_t i = 0; i < num_cols_; ++i) {
    if (i < column_names_.size()) width[i] = column_names_[i].size();
  }
  for (const Row& r : rows_) {
    for (size_t i = 0; i < num_cols_; ++i) {
      width[i] = std::max(width[i], r[i].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out += "|";
    for (size_t i = 0; i < num_cols_; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      out += " " + c + std::string(width[i] - c.size(), ' ') + " |";
    }
    out += "\n";
  };
  if (!column_names_.empty()) {
    emit_row(column_names_);
    out += "|";
    for (size_t i = 0; i < num_cols_; ++i) {
      out += std::string(width[i] + 2, '-') + "|";
    }
    out += "\n";
  }
  for (const Row& r : rows_) emit_row(r);
  return out;
}

}  // namespace mitra::hdt
