#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

namespace mitra::common {

namespace {

/// splitmix64 finalizer: decorrelates (seed, attempt) into jitter draws.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

double RetryPolicy::BackoffMs(int attempt) const {
  double base = opts_.initial_backoff_ms;
  for (int i = 1; i < attempt; ++i) base *= opts_.backoff_multiplier;
  base = std::min(base, opts_.max_backoff_ms);
  if (opts_.jitter > 0.0) {
    const std::uint64_t draw =
        Mix64(opts_.seed ^ (static_cast<std::uint64_t>(attempt) *
                            0xD1B54A32D192ED03ull));
    // Uniform in [-1, 1) from the top 53 bits, then scaled by jitter.
    const double unit =
        static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
    base *= 1.0 + opts_.jitter * (2.0 * unit - 1.0);
  }
  return std::max(base, 0.0);
}

RetryResult RetryPolicy::Run(const std::function<Status()>& fn) const {
  RetryResult result;
  const int max_attempts = std::max(1, opts_.max_attempts);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    result.attempts = attempt;
    result.status = fn();
    if (result.status.ok()) return result;
    const bool transient = IsTransient(result.status);
    const bool last = attempt == max_attempts || !transient;
    const double backoff = last ? 0.0 : BackoffMs(attempt);
    char line[64];
    std::snprintf(line, sizeof(line), " (backoff %.2fms)", backoff);
    result.trail.push_back("attempt " + std::to_string(attempt) + ": " +
                           result.status.ToString() +
                           (last ? "" : line));
    if (!transient) return result;  // permanent: retrying cannot help
    if (attempt == max_attempts) {
      result.exhausted = true;
      return result;
    }
    if (opts_.sleep_ms) {
      opts_.sleep_ms(backoff);
    } else if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(backoff));
    }
  }
  return result;  // unreachable
}

}  // namespace mitra::common
