#ifndef MITRA_COMMON_RETRY_H_
#define MITRA_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

/// \file retry.h
/// Transient-fault retry with exponential backoff (ISSUE 9). The batch
/// pipeline wraps per-document parse/execute/write in a RetryPolicy so an
/// EINTR/EAGAIN-class I/O hiccup (StatusCode::kUnavailable) costs one
/// backoff sleep, not a failed document. Jitter is derived
/// deterministically from a seed, and the sleep function is injectable, so
/// tests (and the 1-vs-8-thread smoke in CI) get bit-identical retry
/// schedules with zero wall-clock cost.

namespace mitra::common {

/// True when a later retry of the same operation may cure the failure.
/// Exactly the kUnavailable class: every other code (parse errors, budget
/// exhaustion, invariant violations) is permanent and retrying would only
/// burn the fleet's time.
bool IsTransient(const Status& status);

struct RetryOptions {
  /// Total attempts, including the first (1 = no retry).
  int max_attempts = 3;
  /// Backoff before retry k (1-based) is
  /// min(initial * multiplier^(k-1), max) * jitter_factor.
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Jitter amplitude: the factor is uniform in [1-jitter, 1+jitter],
  /// drawn deterministically from (seed, attempt). 0 disables jitter.
  double jitter = 0.5;
  std::uint64_t seed = 1;
  /// Injectable sleep; nullptr = std::this_thread::sleep_for. Tests pass
  /// a recorder/no-op so retries are instantaneous and observable.
  std::function<void(double ms)> sleep_ms;
};

/// Outcome of RetryPolicy::Run, including the trail the quarantine report
/// records.
struct RetryResult {
  Status status;       ///< final status (OK, first permanent, or last transient)
  int attempts = 0;    ///< attempts actually made (>= 1)
  bool exhausted = false;  ///< transient failures used up max_attempts
  /// One human-readable line per failed attempt:
  /// "attempt N: <status> (backoff X.XXms)".
  std::vector<std::string> trail;

  bool recovered() const { return status.ok() && attempts > 1; }
};

/// Runs an operation under RetryOptions. Thread-compatible: construct one
/// per logical operation (the pipeline mixes the document index into the
/// seed so schedules are deterministic per document, independent of
/// thread interleaving).
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryOptions opts) : opts_(std::move(opts)) {}

  /// The deterministic backoff before retry `attempt` (1-based: the sleep
  /// after the attempt-th failure), jitter included.
  double BackoffMs(int attempt) const;

  /// Calls `fn` until it returns OK, returns a permanent (non-transient)
  /// error, or max_attempts is exhausted. Sleeps BackoffMs(k) between
  /// transient attempts.
  RetryResult Run(const std::function<Status()>& fn) const;

  const RetryOptions& options() const { return opts_; }

 private:
  RetryOptions opts_;
};

}  // namespace mitra::common

#endif  // MITRA_COMMON_RETRY_H_
