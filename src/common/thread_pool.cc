#include "common/thread_pool.h"

#include <atomic>
#include <exception>

namespace mitra::common {

namespace {

/// Set while a thread is executing pool work; consulted by ParallelFor to
/// run nested loops inline instead of deadlocking a fixed-size pool.
thread_local const ThreadPool* g_current_pool = nullptr;

}  // namespace

unsigned ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = HardwareThreads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // std::jthread joins on destruction.
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::OnWorkerThread() const { return g_current_pool == this; }

void ThreadPool::WorkerLoop() {
  g_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1 || n == 1 ||
      pool->OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t total;
    const std::function<void(size_t)>* body;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  // first failure, guarded by mu
  };
  auto shared = std::make_shared<Shared>();
  shared->total = n;
  shared->body = &body;

  // Every claimed index is counted as done even after a failure (the body
  // is just skipped), so `done` always reaches `total` and the caller's
  // wait below cannot hang.
  auto drain = [](const std::shared_ptr<Shared>& s) {
    size_t finished = 0;
    for (;;) {
      size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->total) break;
      bool skip;
      {
        std::lock_guard<std::mutex> lock(s->mu);
        skip = s->error != nullptr;
      }
      if (!skip) {
        try {
          (*s->body)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(s->mu);
          if (!s->error) s->error = std::current_exception();
        }
      }
      ++finished;
    }
    if (finished > 0 &&
        s->done.fetch_add(finished, std::memory_order_acq_rel) + finished ==
            s->total) {
      std::lock_guard<std::mutex> lock(s->mu);
      s->cv.notify_all();
    }
  };

  // One helper task per worker beyond the calling thread; helpers that
  // find nothing left to claim exit immediately.
  size_t helpers = std::min<size_t>(pool->size(), n) - 1;
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([shared, drain] { drain(shared); });
  }
  drain(shared);

  {
    std::unique_lock<std::mutex> lock(shared->mu);
    shared->cv.wait(lock, [&] {
      return shared->done.load(std::memory_order_acquire) >= shared->total;
    });
    if (shared->error) std::rethrow_exception(shared->error);
  }
}

}  // namespace mitra::common
