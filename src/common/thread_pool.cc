#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <limits>

#include "common/governor.h"
#include "obs/obs.h"

namespace mitra::common {

namespace {

/// Set while a thread is executing pool work; consulted by ParallelFor to
/// run nested loops inline instead of deadlocking a fixed-size pool.
thread_local const ThreadPool* g_current_pool = nullptr;

constexpr size_t kNoError = std::numeric_limits<size_t>::max();

}  // namespace

unsigned ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = HardwareThreads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // std::jthread joins on destruction.
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    MITRA_COUNT("pool/tasks_submitted", 1);
    MITRA_GAUGE_SET("pool/queue_depth", queue_.size());
  }
  cv_.notify_one();
}

bool ThreadPool::OnWorkerThread() const { return g_current_pool == this; }

void ThreadPool::WorkerLoop() {
  g_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!stopping_ && queue_.empty()) {
#if MITRA_OBS
        // Blocking wait: the time between going idle and claiming the
        // next task is the pool's scheduling latency.
        std::uint64_t wait_start = obs::NowNs();
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        MITRA_COUNT("pool/worker_wait_ns", obs::NowNs() - wait_start);
#else
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
#endif
      }
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelForStatus wave. Failures are recorded
/// under `mu` keyed by index; only the smallest failing index survives,
/// which makes the propagated error identical to the sequential loop's
/// regardless of scheduling. `error_hint` mirrors the current smallest
/// failing index so workers can cancel (skip) larger unclaimed indices
/// with a relaxed load instead of taking the lock per item.
struct ForShared {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::atomic<size_t> error_hint{kNoError};
  size_t total = 0;
  const std::function<Status(size_t)>* body = nullptr;
  CancelToken* token = nullptr;
  std::mutex mu;
  std::condition_variable cv;
  size_t error_index = kNoError;  // guarded by mu
  std::exception_ptr exception;   // set iff the error at error_index threw
  Status status;                  // set iff the error at error_index returned

  void RecordFailure(size_t i, std::exception_ptr e, Status s) {
    std::lock_guard<std::mutex> lock(mu);
    if (i < error_index) {
      error_index = i;
      exception = e;
      status = std::move(s);
      error_hint.store(i, std::memory_order_relaxed);
    }
  }
};

/// Claims and runs indices until none remain. Indices larger than the
/// smallest failing index — and, under external cancellation, all
/// unclaimed indices — are counted as done but not executed, so `done`
/// always reaches `total` and the caller cannot hang. Indices *smaller*
/// than a recorded failure still run: the minimal failing index must be
/// found for the min-index determinism contract to hold.
void DrainFor(const std::shared_ptr<ForShared>& s) {
  size_t finished = 0;
  for (;;) {
    size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= s->total) break;
    bool skip =
        i > s->error_hint.load(std::memory_order_relaxed) ||
        (s->token != nullptr && s->token->cancelled());
    if (!skip) {
      try {
        Status st = (*s->body)(i);
        if (!st.ok()) s->RecordFailure(i, nullptr, std::move(st));
      } catch (...) {
        s->RecordFailure(i, std::current_exception(), Status::OK());
      }
    }
    ++finished;
  }
  if (finished > 0 &&
      s->done.fetch_add(finished, std::memory_order_acq_rel) + finished ==
          s->total) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->cv.notify_all();
  }
}

Status SequentialForStatus(size_t n, const std::function<Status(size_t)>& body,
                           CancelToken* token) {
  for (size_t i = 0; i < n; ++i) {
    if (token != nullptr && token->cancelled()) return token->cause();
    MITRA_RETURN_IF_ERROR(body(i));
  }
  return Status::OK();
}

}  // namespace

Status ParallelForStatus(ThreadPool* pool, size_t n,
                         const std::function<Status(size_t)>& body,
                         CancelToken* token) {
  if (n == 0) return Status::OK();
  MITRA_COUNT("pool/parallel_for/calls", 1);
  MITRA_COUNT("pool/parallel_for/items", n);
  if (pool == nullptr || pool->size() <= 1 || n == 1 ||
      pool->OnWorkerThread()) {
    MITRA_COUNT("pool/parallel_for/inline", 1);
    return SequentialForStatus(n, body, token);
  }

  auto shared = std::make_shared<ForShared>();
  shared->total = n;
  shared->body = &body;
  shared->token = token;

  // One helper task per worker beyond the calling thread; helpers that
  // find nothing left to claim exit immediately.
  size_t helpers = std::min<size_t>(pool->size(), n) - 1;
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([shared] { DrainFor(shared); });
  }
  DrainFor(shared);

  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&] {
    return shared->done.load(std::memory_order_acquire) >= shared->total;
  });
  if (shared->error_index != kNoError) {
    if (shared->exception) std::rethrow_exception(shared->exception);
    return shared->status;
  }
  if (token != nullptr && token->cancelled()) return token->cause();
  return Status::OK();
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body) {
  ParallelForStatus(
      pool, n,
      [&body](size_t i) {
        body(i);
        return Status::OK();
      },
      nullptr);
}

}  // namespace mitra::common
