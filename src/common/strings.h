#ifndef MITRA_COMMON_STRINGS_H_
#define MITRA_COMMON_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file strings.h
/// Small string utilities shared across modules. Kept dependency-free.

namespace mitra {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// Attempts to parse `s` as a finite double with no trailing garbage.
/// Accepts integers and decimal/scientific notation.
std::optional<double> ParseNumber(std::string_view s);

/// Three-way comparison of two data values using the paper's comparison
/// semantics for predicates: if both parse as numbers, compare numerically,
/// otherwise compare lexicographically. Returns <0, 0, >0.
int CompareData(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// 64-bit FNV-1a hash, used for hashing node-set signatures.
uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed = 1469598103934665603ULL);

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o 3` variant). Used by
/// the batch journal to detect torn-but-parseable shard files. Chainable:
/// pass the previous return value as `crc` to extend over more data.
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

/// Hash combiner (boost-style).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace mitra

#endif  // MITRA_COMMON_STRINGS_H_
