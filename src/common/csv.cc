#include "common/csv.h"

namespace mitra {

Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  bool after_quote = false;  // a quoted field just closed

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
    after_quote = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
          after_quote = true;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (field.empty() && !field_started) {
          in_quotes = true;
          field_started = true;
        } else {
          return Status::ParseError(
              "CSV: quote inside unquoted field at offset " +
              std::to_string(i));
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        // Only as part of a CRLF line break (RFC 4180); a stray CR would
        // otherwise vanish from the field silently.
        if (i + 1 >= text.size() || text[i + 1] != '\n') {
          return Status::ParseError(
              "CSV: bare CR outside a quoted field at offset " +
              std::to_string(i));
        }
        break;
      case '\n':
        end_row();
        break;
      default:
        if (after_quote) {
          return Status::ParseError(
              "CSV: data after closing quote at offset " +
              std::to_string(i));
        }
        field.push_back(c);
        field_started = true;
    }
  }
  if (in_quotes) return Status::ParseError("CSV: unterminated quoted field");
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      const std::string& f = row[i];
      bool needs_quotes = f.find_first_of(",\"\n\r") != std::string::npos;
      if (needs_quotes) {
        out.push_back('"');
        for (char c : f) {
          if (c == '"') out += "\"\"";
          else out.push_back(c);
        }
        out.push_back('"');
      } else {
        out += f;
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace mitra
