#include "common/fs.h"

#include <atomic>
#include <fstream>
#include <sstream>

namespace mitra::common {

namespace {

class DiskFileSystem : public FileSystem {
 public:
  Result<std::string> ReadFile(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::InvalidArgument("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) return Status::InvalidArgument("read failed: " + path);
    return ss.str();
  }

  Status WriteFile(const std::string& path,
                   const std::string& content) override {
    std::ofstream out(path, std::ios::binary);
    if (!out) return Status::InvalidArgument("cannot write " + path);
    out << content;
    out.flush();
    if (!out) return Status::InvalidArgument("write failed: " + path);
    return Status::OK();
  }
};

std::atomic<FileSystem*> g_fs_override{nullptr};

}  // namespace

FileSystem* RealFileSystem() {
  static DiskFileSystem* fs = new DiskFileSystem();
  return fs;
}

FileSystem* GetFileSystem() {
  FileSystem* fs = g_fs_override.load(std::memory_order_acquire);
  return fs != nullptr ? fs : RealFileSystem();
}

void SetFileSystemForTest(FileSystem* fs) {
  g_fs_override.store(fs, std::memory_order_release);
}

Result<std::string> MemoryFileSystem::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::InvalidArgument("cannot open " + path);
  }
  return it->second;
}

Status MemoryFileSystem::WriteFile(const std::string& path,
                                   const std::string& content) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = content;
  return Status::OK();
}

bool MemoryFileSystem::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) != 0;
}

}  // namespace mitra::common
