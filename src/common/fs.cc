#include "common/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "obs/obs.h"

namespace mitra::common {

namespace {

constexpr std::string_view kTempSuffix = ".mitra-tmp";

/// Maps an errno from a filesystem syscall to a Status class: the
/// interrupted/again family is transient (kUnavailable — a retry may
/// succeed), space exhaustion is kResourceExhausted, everything else is a
/// permanent InvalidArgument.
StatusCode CodeForErrno(int err) {
  switch (err) {
    case EINTR:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:
    case ETIMEDOUT:
      return StatusCode::kUnavailable;
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
    case EMFILE:
    case ENFILE:
      return StatusCode::kResourceExhausted;
    default:
      return StatusCode::kInvalidArgument;
  }
}

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  return Status(CodeForErrno(err), std::string(op) + " failed: " + path +
                                       " (" + std::strerror(err) + ")");
}

/// Writes all of `content` to `fd`, retrying EINTR-interrupted and short
/// writes. Anything else is the caller's errno.
bool WriteAll(int fd, const std::string& content) {
  size_t off = 0;
  while (off < content.size()) {
    ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

Status CreateParents(const std::string& path) {
  std::filesystem::path p(path);
  if (!p.has_parent_path()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(p.parent_path(), ec);
  // Racing creators and pre-existing directories are fine; a hard failure
  // shows up when the file itself is opened.
  return Status::OK();
}

/// Opens `path`, writes `content`, and (when `durable`) fsyncs before
/// closing. Every syscall result is checked: a short write, failed flush,
/// or failed close surfaces as a Status — a full disk must not report
/// success.
Status WriteWholeFile(const std::string& path, const std::string& content,
                      bool durable) {
  MITRA_RETURN_IF_ERROR(CreateParents(path));
  int fd;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  if (!WriteAll(fd, content)) {
    Status st = ErrnoStatus("write", path, errno);
    ::close(fd);
    return st;
  }
  if (durable && ::fsync(fd) != 0) {
    Status st = ErrnoStatus("fsync", path, errno);
    ::close(fd);
    return st;
  }
  if (::close(fd) != 0) return ErrnoStatus("close", path, errno);
  return Status::OK();
}

/// fsyncs the directory containing `path`, making a just-committed rename
/// durable. Best effort on filesystems that reject directory fds.
Status SyncParentDir(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    // Some filesystems refuse O_RDONLY on directories (EACCES/EINVAL);
    // the rename itself already succeeded, so don't fail the write.
    return Status::OK();
  }
  Status st;
  if (::fsync(fd) != 0 && errno != EINVAL && errno != EROFS) {
    st = ErrnoStatus("fsync dir", dir, errno);
  }
  ::close(fd);
  return st;
}

class DiskFileSystem : public FileSystem {
 public:
  Result<std::string> ReadFile(const std::string& path) override {
    // Raw open/read so errno survives to classification: EINTR is retried
    // in place, and the transient/exhausted errno families map to
    // kUnavailable/kResourceExhausted exactly as the write path does —
    // the batch retry policy keys off those classes. A plain missing file
    // keeps the historical "cannot open" InvalidArgument shape.
    int fd;
    do {
      fd = ::open(path.c_str(), O_RDONLY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      if (errno == ENOENT || errno == ENOTDIR) {
        return Status::InvalidArgument("cannot open " + path);
      }
      return ErrnoStatus("open", path, errno);
    }
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        // EAGAIN on a regular file means someone handed us a non-blocking
        // descriptor's path semantics (or a weird FUSE); both it and
        // EINTR are retry-in-place, everything else aborts the read.
        if (errno == EINTR || errno == EAGAIN) continue;
        Status st = ErrnoStatus("read", path, errno);
        ::close(fd);
        return st;
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Status WriteFile(const std::string& path,
                   const std::string& content) override {
    return WriteWholeFile(path, content, /*durable=*/false);
  }

  Status WriteFileAtomic(const std::string& path,
                         const std::string& content) override {
    const std::string tmp = TempPathFor(path);
    Status st = WriteWholeFile(tmp, content, /*durable=*/true);
    if (st.ok()) {
      if (::rename(tmp.c_str(), path.c_str()) != 0) {
        st = ErrnoStatus("rename", tmp + " -> " + path, errno);
      } else {
        st = SyncParentDir(path);
      }
    }
    if (!st.ok()) {
      ::unlink(tmp.c_str());  // roll the staging file back, best effort
      MITRA_COUNT("fs/atomic_rollback", 1);
      return st;
    }
    MITRA_COUNT("fs/atomic_commit", 1);
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
      return Status::InvalidArgument("cannot list " + dir + ": " +
                                     ec.message());
    }
    std::vector<std::string> out;
    for (const auto& entry : it) {
      if (!entry.is_regular_file(ec)) continue;
      if (IsTempPath(entry.path().filename().string())) continue;
      out.push_back(entry.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  bool Exists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }

  Status Remove(const std::string& path) override {
    std::error_code ec;
    std::filesystem::remove(path, ec);  // false (missing) is idempotent OK
    if (ec) {
      return Status::InvalidArgument("remove failed: " + path + " (" +
                                     ec.message() + ")");
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to, errno);
    }
    return Status::OK();
  }
};

std::atomic<FileSystem*> g_fs_override{nullptr};

}  // namespace

std::string TempPathFor(const std::string& path) {
  return path + std::string(kTempSuffix);
}

bool IsTempPath(std::string_view path) {
  return path.size() >= kTempSuffix.size() &&
         path.substr(path.size() - kTempSuffix.size()) == kTempSuffix;
}

FileSystem* RealFileSystem() {
  static DiskFileSystem* fs = new DiskFileSystem();
  return fs;
}

FileSystem* GetFileSystem() {
  FileSystem* fs = g_fs_override.load(std::memory_order_acquire);
  return fs != nullptr ? fs : RealFileSystem();
}

void SetFileSystemForTest(FileSystem* fs) {
  g_fs_override.store(fs, std::memory_order_release);
}

Status FileSystem::WriteFileAtomic(const std::string& path,
                                   const std::string& content) {
  // Two-phase protocol via the virtual primitives, so wrappers see (and
  // can fail) each phase: a crash between WriteFile and Rename leaves the
  // destination untouched with a temp sibling to be overwritten later.
  const std::string tmp = TempPathFor(path);
  MITRA_RETURN_IF_ERROR(WriteFile(tmp, content));
  Status st = Rename(tmp, path);
  if (!st.ok()) {
    (void)Remove(tmp);
    MITRA_COUNT("fs/atomic_rollback", 1);
    return st;
  }
  MITRA_COUNT("fs/atomic_commit", 1);
  return Status::OK();
}

bool FileSystem::Exists(const std::string& path) {
  return ReadFile(path).ok();
}

Status FileSystem::Remove(const std::string& path) {
  return Status::InvalidArgument("Remove not supported by this FileSystem (" +
                                 path + ")");
}

Status FileSystem::Rename(const std::string& from, const std::string& to) {
  // Non-atomic fallback for minimal doubles; real implementations
  // override with an atomic move.
  MITRA_ASSIGN_OR_RETURN(std::string content, ReadFile(from));
  MITRA_RETURN_IF_ERROR(WriteFile(to, content));
  return Remove(from);
}

Result<std::string> MemoryFileSystem::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::InvalidArgument("cannot open " + path);
  }
  return it->second;
}

Status MemoryFileSystem::WriteFile(const std::string& path,
                                   const std::string& content) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = content;
  return Status::OK();
}

Result<std::vector<std::string>> MemoryFileSystem::ListDir(
    const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  // Paths are flat keys; "inside dir" means the key extends `dir + '/'`
  // with no further separator (mirroring the non-recursive disk listing).
  std::string prefix = dir;
  if (prefix.empty() || prefix.back() != '/') prefix += '/';
  std::vector<std::string> out;
  for (const auto& [path, content] : files_) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    if (path.find('/', prefix.size()) != std::string::npos) continue;
    if (IsTempPath(path)) continue;  // atomic-write leftovers stay hidden
    out.push_back(path);  // map iteration: already sorted
  }
  return out;
}

bool MemoryFileSystem::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) != 0;
}

Status MemoryFileSystem::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);  // idempotent: removing a missing file is OK
  return Status::OK();
}

Status MemoryFileSystem::Rename(const std::string& from,
                                const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::InvalidArgument("rename: no such file " + from);
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

Result<std::vector<std::string>> FileSystem::ListDir(const std::string& dir) {
  return Status::InvalidArgument("ListDir not supported by this FileSystem (" +
                                 dir + ")");
}

}  // namespace mitra::common
