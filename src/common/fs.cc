#include "common/fs.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace mitra::common {

namespace {

class DiskFileSystem : public FileSystem {
 public:
  Result<std::string> ReadFile(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::InvalidArgument("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) return Status::InvalidArgument("read failed: " + path);
    return ss.str();
  }

  Status WriteFile(const std::string& path,
                   const std::string& content) override {
    // Best-effort parent creation: the batch pipeline writes shards and
    // cache entries under directories that need not pre-exist. Failure
    // falls through to the ofstream error below.
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
      std::error_code ec;
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) return Status::InvalidArgument("cannot write " + path);
    out << content;
    out.flush();
    if (!out) return Status::InvalidArgument("write failed: " + path);
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
      return Status::InvalidArgument("cannot list " + dir + ": " +
                                     ec.message());
    }
    std::vector<std::string> out;
    for (const auto& entry : it) {
      if (entry.is_regular_file(ec)) out.push_back(entry.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

std::atomic<FileSystem*> g_fs_override{nullptr};

}  // namespace

FileSystem* RealFileSystem() {
  static DiskFileSystem* fs = new DiskFileSystem();
  return fs;
}

FileSystem* GetFileSystem() {
  FileSystem* fs = g_fs_override.load(std::memory_order_acquire);
  return fs != nullptr ? fs : RealFileSystem();
}

void SetFileSystemForTest(FileSystem* fs) {
  g_fs_override.store(fs, std::memory_order_release);
}

Result<std::string> MemoryFileSystem::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::InvalidArgument("cannot open " + path);
  }
  return it->second;
}

Status MemoryFileSystem::WriteFile(const std::string& path,
                                   const std::string& content) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = content;
  return Status::OK();
}

Result<std::vector<std::string>> MemoryFileSystem::ListDir(
    const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  // Paths are flat keys; "inside dir" means the key extends `dir + '/'`
  // with no further separator (mirroring the non-recursive disk listing).
  std::string prefix = dir;
  if (prefix.empty() || prefix.back() != '/') prefix += '/';
  std::vector<std::string> out;
  for (const auto& [path, content] : files_) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    if (path.find('/', prefix.size()) != std::string::npos) continue;
    out.push_back(path);  // map iteration: already sorted
  }
  return out;
}

bool MemoryFileSystem::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) != 0;
}

void MemoryFileSystem::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
}

Result<std::vector<std::string>> FileSystem::ListDir(const std::string& dir) {
  return Status::InvalidArgument("ListDir not supported by this FileSystem (" +
                                 dir + ")");
}

}  // namespace mitra::common
