#ifndef MITRA_COMMON_GOVERNOR_H_
#define MITRA_COMMON_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"

/// \file governor.h
/// The resource-governance layer: a deadline plus memory/row/state budget
/// accounting behind one object (Governor) and a lock-free cooperative
/// cancellation flag (CancelToken) shared by every thread working on the
/// same synthesis or migration. MITRA's evaluation treats OOM and timeout
/// as first-class outcomes (§6); the governor turns them into
/// `kResourceExhausted` Statuses raised at bounded-latency check sites
/// instead of runaway loops or allocator death.
///
/// Usage pattern: every expensive loop calls `governor->Check("site")`
/// every iteration (or every few, when iterations are trivially cheap)
/// and `Charge{States,Rows,Bytes}` when it materializes something whose
/// size is the thing being budgeted. All of them return a Status; a
/// non-OK return must be propagated unchanged so the cause (deadline,
/// which budget, which site) reaches the caller intact. The first
/// overrun also trips the shared CancelToken, so sibling threads
/// converge at their next check instead of finishing their waves.
///
/// Check sites are named with stable slash-separated strings
/// ("dfa/construct", "alloc/cross-product", ...). The names serve two
/// masters: error messages, and the fault-injection harness in
/// src/testing, which targets sites by prefix through the process-global
/// FaultProbe hook below (a relaxed atomic load on the hot path, null in
/// production).
///
/// Thread safety: all members are safe to call concurrently. Budget
/// counters are relaxed atomics — totals are exact, and the *decision*
/// "did the run as a whole exceed the budget" is schedule-independent
/// whenever the total work is (see DESIGN.md on determinism under
/// budgets).

namespace mitra::common {

/// Test-only hook consulted by every Governor::Check/Charge call. Returns
/// non-OK to simulate a fault (deadline expiry, allocation failure, ...)
/// at that site. Implementations must be thread-safe.
class FaultProbe {
 public:
  virtual ~FaultProbe() = default;
  /// `site` is the check-site name; never null.
  virtual Status OnProbe(const char* site) = 0;
};

/// Installs (or, with nullptr, removes) the process-global fault probe.
/// Intended for tests only; not synchronized with in-flight checks beyond
/// the atomicity of the pointer itself, so install/remove only while no
/// governed work is running.
void SetGlobalFaultProbe(FaultProbe* probe);
FaultProbe* GetGlobalFaultProbe();

/// A lock-free cooperative cancellation flag with a Status cause. One
/// writer wins the race to set the cause; every reader observes the same
/// cause once `cancelled()` is true (CAS claim + release-store publish,
/// acquire-load read).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation with `cause` (must be non-OK). The first
  /// caller's cause wins; later calls are no-ops. Safe from any thread.
  void Cancel(Status cause);

  /// True once some thread's Cancel has been published.
  bool cancelled() const {
    return flag_.load(std::memory_order_acquire);
  }

  /// The published cause, or OK when not (yet) cancelled.
  Status cause() const;

  /// OK until cancelled, then the cause.
  Status Check() const {
    if (!cancelled()) return Status::OK();
    return cause();
  }

 private:
  std::atomic<bool> claimed_{false};  // CAS guard: one writer stores cause_
  std::atomic<bool> flag_{false};     // release-stored after cause_ is set
  Status cause_;                      // written once, before flag_
};

/// Resource budget for one governed run. Zero (or infinity for time)
/// means unlimited for that axis.
struct ResourceLimits {
  /// Wall-clock budget in seconds, measured from Governor construction.
  /// +inf (the default) disables the deadline; 0.0 expires immediately.
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  /// Aggregate automaton-state / search-node budget.
  std::uint64_t max_states = 0;
  /// Aggregate materialized-row budget (intermediate + output tuples).
  std::uint64_t max_rows = 0;
  /// Aggregate tracked-allocation budget in bytes. Accounting is
  /// monotone high-water: bytes charged at "alloc/…" sites are never
  /// credited back, which upper-bounds (not measures) live heap use.
  std::uint64_t max_memory_bytes = 0;

  bool has_deadline() const {
    return time_limit_seconds != std::numeric_limits<double>::infinity();
  }
};

/// Snapshot of what a governed run has consumed so far.
struct BudgetUsage {
  double seconds = 0.0;
  std::uint64_t states = 0;
  std::uint64_t rows = 0;
  std::uint64_t bytes = 0;
  /// Number of Check/Charge calls — the cancellation-latency currency.
  std::uint64_t checks = 0;

  /// Saturating element-wise accumulation (for roll-ups across tables).
  void Accumulate(const BudgetUsage& other);
};

/// Deadline + budget accounting + cancellation for one run. Create one
/// per synthesis/migration (or per table, for isolation), pass it by
/// pointer through the options structs; a null Governor* everywhere means
/// "ungoverned" and costs nothing.
class Governor {
 public:
  /// Unlimited governor (still usable as a cancellation point).
  Governor();
  /// Governed by `limits`. When `parent_token` is non-null the governor
  /// shares that token instead of owning one, so cancelling the parent
  /// (or any sibling overrunning) stops this run too.
  explicit Governor(const ResourceLimits& limits,
                    CancelToken* parent_token = nullptr);

  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  /// The cheap cooperative cancellation point. Order: fault probe (test
  /// hook, relaxed null check) → token → deadline. Non-OK results from
  /// the deadline also trip the token so sibling threads stop.
  Status Check(const char* site) const;

  /// Charge `n` units against the corresponding budget (after an implicit
  /// Check at the same site). On overrun returns kResourceExhausted
  /// naming the site and trips the token. The charge itself is recorded
  /// even when it overruns (counters saturate, they do not wrap).
  Status ChargeStates(std::uint64_t n, const char* site);
  Status ChargeRows(std::uint64_t n, const char* site);
  Status ChargeBytes(std::uint64_t n, const char* site);

  /// Bulk accumulation of a child run's usage into this governor
  /// (degradation-ladder roll-ups). Does not Check and never fails;
  /// counters saturate.
  void ChargeUsage(const BudgetUsage& usage);

  /// Cancels the run with `cause` (must be non-OK).
  void Cancel(Status cause) { token_->Cancel(std::move(cause)); }

  BudgetUsage Usage() const;
  const ResourceLimits& limits() const { return limits_; }
  CancelToken* token() { return token_; }
  const CancelToken* token() const { return token_; }

  /// Seconds since construction.
  double ElapsedSeconds() const;
  bool DeadlineExpired() const;

 private:
  Status Exhausted(const char* what, const char* site) const;

  ResourceLimits limits_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point deadline_;  // valid iff has_deadline
  CancelToken own_token_;
  CancelToken* token_;  // == &own_token_ unless sharing a parent's

  mutable std::atomic<std::uint64_t> checks_{0};
  std::atomic<std::uint64_t> states_{0};
  std::atomic<std::uint64_t> rows_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

/// Convenience: Status-propagating check for use inside functions that
/// return Status or Result<T>. No-op when `gov` is null.
#define MITRA_GOV_CHECK(gov, site)                        \
  do {                                                    \
    if ((gov) != nullptr) {                               \
      ::mitra::Status _gov_st = (gov)->Check(site);       \
      if (!_gov_st.ok()) return _gov_st;                  \
    }                                                     \
  } while (0)

}  // namespace mitra::common

#endif  // MITRA_COMMON_GOVERNOR_H_
