#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace mitra {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t p = s.find(sep, start);
    if (p == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, p - start));
    start = p + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<double> ParseNumber(std::string_view s) {
  if (s.empty() || s.size() > 63) return std::nullopt;
  char buf[64];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf, &end);
  if (end != buf + s.size() || errno == ERANGE || !std::isfinite(v)) {
    return std::nullopt;
  }
  return v;
}

int CompareData(std::string_view a, std::string_view b) {
  auto na = ParseNumber(a);
  auto nb = ParseNumber(b);
  if (na && nb) {
    if (*na < *nb) return -1;
    if (*na > *nb) return 1;
    return 0;
  }
  int c = a.compare(b);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  std::string out;
  if (from.empty()) return std::string(s);
  size_t start = 0;
  while (true) {
    size_t p = s.find(from, start);
    if (p == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, p - start));
    out.append(to);
    start = p + from.size();
  }
}

uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint32_t Crc32(const void* data, size_t n, uint32_t crc) {
  // Table generated lazily from the reflected IEEE polynomial 0xEDB88320;
  // thread-safe via the C++11 static-initialization guarantee.
  static const auto* kTable = [] {
    auto* table = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace mitra
