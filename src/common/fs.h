#ifndef MITRA_COMMON_FS_H_
#define MITRA_COMMON_FS_H_

#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// \file fs.h
/// A minimal filesystem shim. The CLI and the corpus/fuzz loaders do all
/// file I/O through the process-global FileSystem returned by
/// GetFileSystem(), so tests can interpose an in-memory or fault-injecting
/// implementation (SetFileSystemForTest) and drive the "simulated I/O
/// error" arm of the fault-injection harness without touching the real
/// disk.
///
/// Crash consistency (ISSUE 9): WriteFileAtomic is the two-phase durable
/// write every batch-pipeline output goes through — write a temp sibling
/// (`<path>.mitra-tmp`), flush it to stable storage, rename it into place,
/// then flush the parent directory. A crash leaves either the old file or
/// the new one, never a torn mixture. The base-class implementation
/// decomposes into this->WriteFile(temp) + this->Rename(temp, path), so
/// wrapper filesystems (FaultyFileSystem, CrashPointFileSystem) interpose
/// on each phase and can fail or "crash" inside the temp-write/rename
/// window; the disk implementation overrides it with the full
/// open/write/fsync/rename/fsync-dir protocol.

namespace mitra::common {

/// The temp sibling WriteFileAtomic stages into: `<path>.mitra-tmp`.
std::string TempPathFor(const std::string& path);
/// True for atomic-write staging files. ListDir implementations exclude
/// them, so a crash-leftover temp never leaks into manifest glob
/// expansion or directory scans.
bool IsTempPath(std::string_view path);

class FileSystem {
 public:
  virtual ~FileSystem() = default;
  /// Reads the whole file; InvalidArgument when it cannot be opened.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  /// Creates/truncates and writes the whole file. The disk implementation
  /// creates missing parent directories (the batch pipeline writes shard
  /// files under a fresh output directory) and reports short writes and
  /// close/flush failures as a Status (a full disk is an error, not a
  /// silent success). Not crash-consistent: use WriteFileAtomic for
  /// outputs that must never be observed torn.
  virtual Status WriteFile(const std::string& path,
                           const std::string& content) = 0;
  /// Two-phase crash-consistent write: stage the content into
  /// TempPathFor(path), then rename into place. After it returns OK the
  /// content is durable (disk: fsync file + parent dir); after a crash at
  /// any point the destination holds either its previous content or the
  /// new content in full. The default implementation decomposes into
  /// WriteFile + Rename on *this* (wrappers interpose per phase); a failed
  /// rename removes the temp file (rollback).
  virtual Status WriteFileAtomic(const std::string& path,
                                 const std::string& content);
  /// Full paths of the regular files directly inside `dir`, sorted
  /// lexicographically (the batch manifest's glob expansion relies on the
  /// order being deterministic). Subdirectories and atomic-write temp
  /// files (IsTempPath) are not listed. The base implementation reports
  /// InvalidArgument so minimal test doubles that only read/write keep
  /// compiling.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir);
  /// True if `path` exists. The base implementation probes with ReadFile.
  virtual bool Exists(const std::string& path);
  /// Removes the file. Idempotent: removing a missing file is OK (the
  /// quarantine and atomic-rollback paths must tolerate replays).
  virtual Status Remove(const std::string& path);
  /// Atomically replaces `to` with `from` (disk: POSIX rename(2); the
  /// in-memory implementation moves the map entry under its lock). The
  /// base implementation is a non-atomic read+write+remove fallback for
  /// minimal doubles.
  virtual Status Rename(const std::string& from, const std::string& to);
};

/// The real (disk-backed) filesystem; a process-wide singleton. Syscall
/// failures in the EINTR/EAGAIN class surface as kUnavailable (transient,
/// retryable); ENOSPC-class exhaustion as kResourceExhausted.
FileSystem* RealFileSystem();

/// The filesystem all mitra tools use. RealFileSystem() unless a test has
/// interposed one.
FileSystem* GetFileSystem();

/// Interposes `fs` (nullptr restores the real one). Test-only; not
/// synchronized with in-flight I/O.
void SetFileSystemForTest(FileSystem* fs);

/// An in-memory FileSystem for tests: a path→content map behind a mutex.
/// WriteFileAtomic uses the inherited two-phase decomposition, so the
/// temp-write/rename protocol is observable through wrappers exactly as
/// on disk.
class MemoryFileSystem : public FileSystem {
 public:
  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path,
                   const std::string& content) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  Status Remove(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> files_;
};

}  // namespace mitra::common

#endif  // MITRA_COMMON_FS_H_
