#ifndef MITRA_COMMON_FS_H_
#define MITRA_COMMON_FS_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

/// \file fs.h
/// A minimal filesystem shim. The CLI and the corpus/fuzz loaders do all
/// file I/O through the process-global FileSystem returned by
/// GetFileSystem(), so tests can interpose an in-memory or fault-injecting
/// implementation (SetFileSystemForTest) and drive the "simulated I/O
/// error" arm of the fault-injection harness without touching the real
/// disk.

namespace mitra::common {

class FileSystem {
 public:
  virtual ~FileSystem() = default;
  /// Reads the whole file; InvalidArgument when it cannot be opened.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  /// Creates/truncates and writes the whole file. The disk implementation
  /// creates missing parent directories (the batch pipeline writes shard
  /// files under a fresh output directory).
  virtual Status WriteFile(const std::string& path,
                           const std::string& content) = 0;
  /// Full paths of the regular files directly inside `dir`, sorted
  /// lexicographically (the batch manifest's glob expansion relies on the
  /// order being deterministic). Subdirectories are not listed. The base
  /// implementation reports InvalidArgument so minimal test doubles that
  /// only read/write keep compiling.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir);
};

/// The real (disk-backed) filesystem; a process-wide singleton.
FileSystem* RealFileSystem();

/// The filesystem all mitra tools use. RealFileSystem() unless a test has
/// interposed one.
FileSystem* GetFileSystem();

/// Interposes `fs` (nullptr restores the real one). Test-only; not
/// synchronized with in-flight I/O.
void SetFileSystemForTest(FileSystem* fs);

/// An in-memory FileSystem for tests: a path→content map behind a mutex.
class MemoryFileSystem : public FileSystem {
 public:
  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path,
                   const std::string& content) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;

  bool Exists(const std::string& path) const;
  /// Removes the file if present (test setup for resume/poisoning cases).
  void Remove(const std::string& path);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> files_;
};

}  // namespace mitra::common

#endif  // MITRA_COMMON_FS_H_
