#include "common/governor.h"

#include <algorithm>

#include "obs/obs.h"

namespace mitra::common {

namespace {

std::atomic<FaultProbe*> g_fault_probe{nullptr};

/// Per-site charge counters, surfaced as gov/check/<site> etc. The caches
/// key on the site pointer (always a literal), so the hot path adds ~2 ns
/// to Check/Charge.
MITRA_SITE_COUNTERS(g_check_sites, "gov/check/");
MITRA_SITE_COUNTERS(g_charge_sites, "gov/charge/");

/// Saturating add into a relaxed atomic counter.
void SaturatingAdd(std::atomic<std::uint64_t>* counter, std::uint64_t n) {
  std::uint64_t cur = counter->load(std::memory_order_relaxed);
  for (;;) {
    std::uint64_t next = cur > std::numeric_limits<std::uint64_t>::max() - n
                             ? std::numeric_limits<std::uint64_t>::max()
                             : cur + n;
    if (counter->compare_exchange_weak(cur, next,
                                       std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

void SetGlobalFaultProbe(FaultProbe* probe) {
  g_fault_probe.store(probe, std::memory_order_release);
}

FaultProbe* GetGlobalFaultProbe() {
  return g_fault_probe.load(std::memory_order_acquire);
}

void CancelToken::Cancel(Status cause) {
  assert(!cause.ok());
  bool expected = false;
  if (claimed_.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    cause_ = std::move(cause);
    flag_.store(true, std::memory_order_release);
  }
}

Status CancelToken::cause() const {
  if (!flag_.load(std::memory_order_acquire)) return Status::OK();
  return cause_;
}

void BudgetUsage::Accumulate(const BudgetUsage& other) {
  auto sat = [](std::uint64_t a, std::uint64_t b) {
    return a > std::numeric_limits<std::uint64_t>::max() - b
               ? std::numeric_limits<std::uint64_t>::max()
               : a + b;
  };
  seconds += other.seconds;
  states = sat(states, other.states);
  rows = sat(rows, other.rows);
  bytes = sat(bytes, other.bytes);
  checks = sat(checks, other.checks);
}

Governor::Governor() : Governor(ResourceLimits{}, nullptr) {}

Governor::Governor(const ResourceLimits& limits, CancelToken* parent_token)
    : limits_(limits),
      start_(std::chrono::steady_clock::now()),
      token_(parent_token != nullptr ? parent_token : &own_token_) {
  if (limits_.has_deadline()) {
    // A non-positive budget expires immediately; clamp the duration so
    // the conversion below cannot overflow.
    double secs = std::max(0.0, limits_.time_limit_seconds);
    secs = std::min(secs, 1.0e9);  // ~31 years: effectively unlimited
    deadline_ = start_ + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(secs));
  }
}

double Governor::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

bool Governor::DeadlineExpired() const {
  return limits_.has_deadline() &&
         std::chrono::steady_clock::now() >= deadline_;
}

Status Governor::Exhausted(const char* what, const char* site) const {
  Status s = Status::ResourceExhausted(std::string(what) + " budget exceeded at " +
                                       site);
  token_->Cancel(s);
  return s;
}

Status Governor::Check(const char* site) const {
  checks_.fetch_add(1, std::memory_order_relaxed);
  MITRA_SITE_COUNT(g_check_sites, site, 1);
  if (FaultProbe* probe = g_fault_probe.load(std::memory_order_relaxed)) {
    Status s = probe->OnProbe(site);
    if (!s.ok()) {
      // Injected faults propagate exactly like organic ones, including
      // tripping the shared token so sibling threads unwind too.
      token_->Cancel(s);
      return s;
    }
  }
  if (token_->cancelled()) return token_->cause();
  if (limits_.has_deadline() &&
      std::chrono::steady_clock::now() >= deadline_) {
    return Exhausted("time", site);
  }
  return Status::OK();
}

Status Governor::ChargeStates(std::uint64_t n, const char* site) {
  MITRA_RETURN_IF_ERROR(Check(site));
  MITRA_SITE_COUNT(g_charge_sites, site, n);
  SaturatingAdd(&states_, n);
  if (limits_.max_states != 0 &&
      states_.load(std::memory_order_relaxed) > limits_.max_states) {
    return Exhausted("state", site);
  }
  return Status::OK();
}

Status Governor::ChargeRows(std::uint64_t n, const char* site) {
  MITRA_RETURN_IF_ERROR(Check(site));
  MITRA_SITE_COUNT(g_charge_sites, site, n);
  SaturatingAdd(&rows_, n);
  if (limits_.max_rows != 0 &&
      rows_.load(std::memory_order_relaxed) > limits_.max_rows) {
    return Exhausted("row", site);
  }
  return Status::OK();
}

Status Governor::ChargeBytes(std::uint64_t n, const char* site) {
  MITRA_RETURN_IF_ERROR(Check(site));
  MITRA_SITE_COUNT(g_charge_sites, site, n);
  SaturatingAdd(&bytes_, n);
  if (limits_.max_memory_bytes != 0 &&
      bytes_.load(std::memory_order_relaxed) > limits_.max_memory_bytes) {
    return Exhausted("memory", site);
  }
  return Status::OK();
}

void Governor::ChargeUsage(const BudgetUsage& usage) {
  SaturatingAdd(&states_, usage.states);
  SaturatingAdd(&rows_, usage.rows);
  SaturatingAdd(&bytes_, usage.bytes);
  SaturatingAdd(&checks_, usage.checks);
}

BudgetUsage Governor::Usage() const {
  BudgetUsage u;
  u.seconds = ElapsedSeconds();
  u.states = states_.load(std::memory_order_relaxed);
  u.rows = rows_.load(std::memory_order_relaxed);
  u.bytes = bytes_.load(std::memory_order_relaxed);
  u.checks = checks_.load(std::memory_order_relaxed);
  return u;
}

}  // namespace mitra::common
