#ifndef MITRA_COMMON_STATUS_H_
#define MITRA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

/// \file status.h
/// Error-handling substrate used throughout the library. Following the
/// Arrow/RocksDB idiom, library code never throws: fallible operations
/// return a Status or a Result<T>.

namespace mitra {

/// Machine-readable category of an error.
enum class StatusCode {
  kOk = 0,
  /// Malformed input document (XML/JSON syntax error, bad UTF-8, ...).
  kParseError,
  /// Arguments violate an API contract (bad column index, empty example
  /// set, schema mismatch, ...).
  kInvalidArgument,
  /// The synthesizer exhausted its search space without finding a program
  /// consistent with the examples (paper: "no DSL program exists").
  kSynthesisFailure,
  /// A configured resource budget (states, candidates, intermediate-table
  /// rows, wall-clock) was exceeded; mirrors MITRA's OOM/timeout failures.
  kResourceExhausted,
  /// Internal invariant violation; indicates a bug in this library.
  kInternal,
  /// A transient environment failure (interrupted syscall, EAGAIN-class
  /// I/O error, injected transient fault): retrying the same operation may
  /// succeed. common::IsTransient() keys off this code; every other code
  /// is permanent.
  kUnavailable,
};

/// Returns a human-readable name for a StatusCode (e.g. "ParseError").
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); carries a message in the error case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not
  /// be kOk (use the default constructor for success).
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status SynthesisFailure(std::string msg) {
    return Status(StatusCode::kSynthesisFailure, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error container: holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds
};

/// Propagates a non-OK Status from an expression to the caller.
#define MITRA_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::mitra::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result-returning expression; on error returns its Status,
/// otherwise binds the value to `lhs`.
#define MITRA_ASSIGN_OR_RETURN(lhs, expr)       \
  auto MITRA_CONCAT_(_res_, __LINE__) = (expr); \
  if (!MITRA_CONCAT_(_res_, __LINE__).ok())     \
    return MITRA_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(MITRA_CONCAT_(_res_, __LINE__)).value()

#define MITRA_CONCAT_INNER_(a, b) a##b
#define MITRA_CONCAT_(a, b) MITRA_CONCAT_INNER_(a, b)

}  // namespace mitra

#endif  // MITRA_COMMON_STATUS_H_
