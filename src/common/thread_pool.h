#ifndef MITRA_COMMON_THREAD_POOL_H_
#define MITRA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// A minimal fixed-size worker pool (C++20 std::jthread, no external
/// dependencies) plus a blocking ParallelFor. Built for the synthesizer's
/// wave-based candidate evaluation and the executor's chunked scans:
///
///  - tasks are claimed dynamically (one shared index), so wildly uneven
///    per-item costs (LearnPredicate on different ψ) still load-balance;
///  - the calling thread participates in the loop instead of idling, so
///    `ParallelFor` over a pool of size 1 degenerates to the plain loop;
///  - a ParallelFor issued from inside a pool worker runs inline on that
///    worker (nested parallelism cannot deadlock the fixed-size pool);
///  - on failure, queued (unclaimed) work is cancelled — remaining
///    indices are skipped, not executed — and the error for the
///    *smallest failing index* is propagated, which is exactly the error
///    the sequential loop would have produced, independent of thread
///    count or scheduling.
///
/// Determinism contract: ParallelFor guarantees nothing about execution
/// order — callers that need the sequential result must write into
/// per-index slots and merge in index order afterwards. Error
/// propagation, however, *is* deterministic per the min-index rule
/// above (for both the exception-based and the Status-based variant).

#include "common/status.h"

namespace mitra::common {

class CancelToken;

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means HardwareThreads().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (≥ 1).
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Tasks must not block on other tasks' completion
  /// (the pool is fixed-size); ParallelFor's inline-when-nested rule
  /// exists precisely to honor this.
  void Submit(std::function<void()> task);

  /// std::thread::hardware_concurrency(), clamped to ≥ 1.
  static unsigned HardwareThreads();

  /// True when the current thread is one of this pool's workers.
  bool OnWorkerThread() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;
};

/// Invokes `body(i)` for every i in [0, n), blocking until all complete.
/// Runs inline (sequentially, in index order) when `pool` is null, has a
/// single worker, n ≤ 1, or the caller is itself a pool worker. The
/// parallel path claims indices dynamically; the caller participates.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body);

/// Status-returning, cancellable ParallelFor. Invokes `body(i)` for every
/// i in [0, n); when any invocation returns non-OK, work not yet claimed
/// is skipped and the Status of the smallest failing index is returned
/// (deterministic across thread counts — it is the error the sequential
/// loop would have hit first). When `token` is non-null, an external
/// cancellation (token->Cancel(...)) likewise stops unclaimed work and
/// the token's cause is returned if no body failed at a smaller index.
/// Exceptions escaping `body` are propagated by the same min-index rule
/// and take precedence over Statuses. Inline/nested rules match
/// ParallelFor.
Status ParallelForStatus(ThreadPool* pool, size_t n,
                         const std::function<Status(size_t)>& body,
                         CancelToken* token = nullptr);

}  // namespace mitra::common

#endif  // MITRA_COMMON_THREAD_POOL_H_
