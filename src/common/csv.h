#ifndef MITRA_COMMON_CSV_H_
#define MITRA_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// \file csv.h
/// Minimal RFC-4180 CSV support for the command-line tool: quoted fields
/// (with embedded commas, quotes, and newlines), CRLF tolerance.

namespace mitra {

/// Parses CSV text into rows of fields. Empty input yields no rows; a
/// trailing newline does not create an empty row.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Renders rows as CSV, quoting fields when needed.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

}  // namespace mitra

#endif  // MITRA_COMMON_CSV_H_
