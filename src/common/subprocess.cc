#include "common/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

extern char** environ;

namespace mitra::common {

namespace {

/// Little-endian u32, independent of host order.
void PutU32(char* out, std::uint32_t v) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t GetU32(const char* in) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[3])) << 24);
}

bool WriteAllFd(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

/// Reads exactly n bytes. Returns bytes read (short only at EOF/error;
/// errno left for the caller on error).
size_t ReadFullFd(int fd, char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t r = ::read(fd, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return off;
    }
    if (r == 0) return off;  // EOF
    off += static_cast<size_t>(r);
  }
  return off;
}

ExitInfo ExitInfoFrom(int wstatus, const struct rusage& ru) {
  ExitInfo info;
  if (WIFSIGNALED(wstatus)) {
    info.signaled = true;
    info.signal = WTERMSIG(wstatus);
  } else if (WIFEXITED(wstatus)) {
    info.exit_code = WEXITSTATUS(wstatus);
  }
  info.max_rss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
  info.user_seconds = static_cast<double>(ru.ru_utime.tv_sec) +
                      static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
  info.system_seconds = static_cast<double>(ru.ru_stime.tv_sec) +
                        static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
  return info;
}

void SetLimit(int resource, std::uint64_t soft, std::uint64_t hard) {
  struct rlimit rl;
  rl.rlim_cur = soft;
  rl.rlim_max = hard;
  (void)::setrlimit(resource, &rl);  // post-exec failure surfaces as death
}

}  // namespace

std::string SignalName(int sig) {
  switch (sig) {
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGINT: return "SIGINT";
    case SIGKILL: return "SIGKILL";
    case SIGPIPE: return "SIGPIPE";
    case SIGSEGV: return "SIGSEGV";
    case SIGTERM: return "SIGTERM";
    case SIGXCPU: return "SIGXCPU";
    case SIGXFSZ: return "SIGXFSZ";
    default: return "SIG" + std::to_string(sig);
  }
}

Result<std::unique_ptr<Subprocess>> Subprocess::Spawn(
    const SubprocessOptions& opts) {
  if (opts.argv.empty()) {
    return Status::InvalidArgument("Subprocess: empty argv");
  }

  // Everything the child needs is materialized before fork: exec arrays
  // and the merged environment (async-signal-safety — between fork and
  // exec only raw syscalls are allowed).
  std::vector<char*> argv;
  argv.reserve(opts.argv.size() + 1);
  for (const std::string& a : opts.argv) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  std::vector<std::string> env_storage;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    std::string_view entry(*e);
    size_t eq = entry.find('=');
    std::string_view key = entry.substr(0, eq);
    bool overridden = false;
    for (const std::string& o : opts.env) {
      if (o.compare(0, key.size(), key) == 0 && o.size() > key.size() &&
          o[key.size()] == '=') {
        overridden = true;
        break;
      }
    }
    if (!overridden) env_storage.emplace_back(entry);
  }
  for (const std::string& o : opts.env) env_storage.push_back(o);
  std::vector<char*> envp;
  envp.reserve(env_storage.size() + 1);
  for (const std::string& e : env_storage) {
    envp.push_back(const_cast<char*>(e.c_str()));
  }
  envp.push_back(nullptr);

  int to_child[2];   // parent writes [1], child stdin [0]
  int from_child[2]; // child stdout [1], parent reads [0]
  if (::pipe(to_child) != 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  if (::pipe(from_child) != 0) {
    int err = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    return Status::Internal(std::string("pipe: ") + std::strerror(err));
  }

  pid_t pid = ::fork();
  if (pid < 0) {
    int err = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    return Status(StatusCode::kResourceExhausted,
                  std::string("fork: ") + std::strerror(err));
  }

  if (pid == 0) {
    // Child. dup2 the pipe ends over stdin/stdout, close everything else
    // we opened, reset SIGPIPE, apply rlimits, exec.
    ::dup2(to_child[0], 0);
    ::dup2(from_child[1], 1);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    if (opts.reset_sigpipe) ::signal(SIGPIPE, SIG_DFL);
    if (opts.rlimit_as_bytes > 0) {
      SetLimit(RLIMIT_AS, opts.rlimit_as_bytes, opts.rlimit_as_bytes);
    }
    if (opts.rlimit_cpu_seconds > 0) {
      // Soft delivers SIGXCPU (attributable); hard is a SIGKILL backstop
      // two seconds later in case the worker catches/ignores it.
      SetLimit(RLIMIT_CPU, opts.rlimit_cpu_seconds,
               opts.rlimit_cpu_seconds + 2);
    }
    if (opts.rlimit_nofile > 0) {
      SetLimit(RLIMIT_NOFILE, opts.rlimit_nofile, opts.rlimit_nofile);
    }
    ::execve(argv[0], argv.data(), envp.data());
    // exec failed: nothing sane to do but die with a recognizable code.
    _exit(127);
  }

  // Parent.
  ::close(to_child[0]);
  ::close(from_child[1]);
  ::fcntl(to_child[1], F_SETFD, FD_CLOEXEC);
  ::fcntl(from_child[0], F_SETFD, FD_CLOEXEC);

  auto proc = std::unique_ptr<Subprocess>(new Subprocess());
  proc->pid_ = pid;
  proc->in_fd_ = to_child[1];
  proc->out_fd_ = from_child[0];
  return proc;
}

Subprocess::~Subprocess() {
  if (!exit_info_.has_value() && pid_ > 0) {
    Kill();
    Wait();
  }
  CloseIn();
  if (out_fd_ >= 0) {
    ::close(out_fd_);
    out_fd_ = -1;
  }
}

void Subprocess::CloseIn() {
  if (in_fd_ >= 0) {
    ::close(in_fd_);
    in_fd_ = -1;
  }
}

std::optional<ExitInfo> Subprocess::TryWait() {
  if (exit_info_.has_value()) return exit_info_;
  int wstatus = 0;
  struct rusage ru;
  std::memset(&ru, 0, sizeof(ru));
  pid_t r;
  do {
    r = ::wait4(pid_, &wstatus, WNOHANG, &ru);
  } while (r < 0 && errno == EINTR);
  if (r == pid_) exit_info_ = ExitInfoFrom(wstatus, ru);
  return exit_info_;
}

ExitInfo Subprocess::Wait() {
  if (exit_info_.has_value()) return *exit_info_;
  int wstatus = 0;
  struct rusage ru;
  std::memset(&ru, 0, sizeof(ru));
  pid_t r;
  do {
    r = ::wait4(pid_, &wstatus, 0, &ru);
  } while (r < 0 && errno == EINTR);
  if (r == pid_) {
    exit_info_ = ExitInfoFrom(wstatus, ru);
  } else {
    exit_info_ = ExitInfo{};  // unreapable (not our child?) — never hang
  }
  return *exit_info_;
}

void Subprocess::Kill(int sig) {
  if (!exit_info_.has_value() && pid_ > 0) ::kill(pid_, sig);
}

Status WriteFrame(int fd, char type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large: " +
                                   std::to_string(payload.size()));
  }
  char header[5];
  PutU32(header, static_cast<std::uint32_t>(payload.size()));
  header[4] = type;
  // One buffered write per frame so interleaved writers (worker main loop
  // vs heartbeat probe under a mutex) never tear a frame.
  std::string frame;
  frame.reserve(sizeof(header) + payload.size());
  frame.append(header, sizeof(header));
  frame.append(payload.data(), payload.size());
  if (!WriteAllFd(fd, frame.data(), frame.size())) {
    if (errno == EPIPE) {
      return Status::Unavailable("frame write: peer closed the pipe");
    }
    return Status::Internal(std::string("frame write: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<std::optional<std::pair<char, std::string>>> ReadFrame(int fd) {
  char header[5];
  size_t got = ReadFullFd(fd, header, sizeof(header));
  if (got == 0) return std::optional<std::pair<char, std::string>>{};
  if (got < sizeof(header)) {
    return Status::Internal("frame read: truncated header");
  }
  std::uint32_t len = GetU32(header);
  if (len > kMaxFramePayload) {
    return Status::Internal("frame read: oversized payload " +
                            std::to_string(len));
  }
  std::string payload(len, '\0');
  if (ReadFullFd(fd, payload.data(), len) < len) {
    return Status::Internal("frame read: truncated payload");
  }
  return std::optional<std::pair<char, std::string>>(
      std::in_place, header[4], std::move(payload));
}

Result<std::optional<std::pair<char, std::string>>> FrameBuffer::Next() {
  if (poisoned_) return Status::Internal("frame stream: poisoned");
  if (buf_.size() < 5) return std::optional<std::pair<char, std::string>>{};
  std::uint32_t len = GetU32(buf_.data());
  if (len > kMaxFramePayload) {
    poisoned_ = true;
    return Status::Internal("frame stream: oversized payload " +
                            std::to_string(len));
  }
  if (buf_.size() < 5 + static_cast<size_t>(len)) {
    return std::optional<std::pair<char, std::string>>{};
  }
  char type = buf_[4];
  std::string payload = buf_.substr(5, len);
  buf_.erase(0, 5 + static_cast<size_t>(len));
  return std::optional<std::pair<char, std::string>>(std::in_place, type,
                                                     std::move(payload));
}

}  // namespace mitra::common
