#ifndef MITRA_COMMON_SUBPROCESS_H_
#define MITRA_COMMON_SUBPROCESS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

/// \file subprocess.h
/// Minimal supervised-subprocess support for the process-isolated batch
/// pipeline (ISSUE 10): fork/exec with per-child rlimits, pipes wired to
/// the child's stdin/stdout, non-blocking status polls, and rusage
/// capture on reap — plus the length-prefixed frame codec both ends of
/// the worker IPC speak.
///
/// The frame format (all integers little-endian):
///
///     u32 payload_length | u8 type | payload bytes
///
/// A frame is the unit of IPC; payload encoding is the caller's business
/// (see pipeline/worker.h for the worker protocol). The codec is split
/// into a blocking writer/reader pair (for the worker, which owns its
/// fds exclusively) and an incremental FrameBuffer decoder (for the
/// supervisor, which interleaves many children through one poll loop and
/// must tolerate frames arriving split across reads).

namespace mitra::common {

struct SubprocessOptions {
  /// argv[0] is the executable path (execve, no PATH search).
  std::vector<std::string> argv;
  /// Extra environment entries ("KEY=value"), merged over the parent's
  /// environment (entries here win). The merged block is built *before*
  /// fork — setenv after fork in a multithreaded parent is undefined.
  std::vector<std::string> env;
  /// Address-space limit (RLIMIT_AS) in bytes; 0 = inherit.
  std::uint64_t rlimit_as_bytes = 0;
  /// CPU-seconds limit (RLIMIT_CPU); 0 = inherit. The soft limit delivers
  /// SIGXCPU at `n`, the hard limit SIGKILLs at `n + 2` as a backstop.
  std::uint64_t rlimit_cpu_seconds = 0;
  /// Open-file-descriptor limit (RLIMIT_NOFILE); 0 = inherit.
  std::uint64_t rlimit_nofile = 0;
  /// Reset SIGPIPE to SIG_DFL in the child (the CLI ignores it process-
  /// wide; workers must not inherit that disposition through exec).
  bool reset_sigpipe = true;
};

/// How a reaped child ended.
struct ExitInfo {
  bool signaled = false;
  int signal = 0;     ///< valid when signaled
  int exit_code = 0;  ///< valid when !signaled
  /// Child rusage at reap time (wait4).
  std::uint64_t max_rss_kb = 0;
  double user_seconds = 0.0;
  double system_seconds = 0.0;
};

/// Human-readable name for a signal number ("SIGSEGV", or "SIG42").
std::string SignalName(int sig);

/// One spawned child with pipes to its stdin (`in_fd`, parent writes) and
/// from its stdout (`out_fd`, parent reads); stderr is inherited. The
/// destructor SIGKILLs and reaps a still-running child — a Subprocess
/// never outlives its owner as a zombie or an orphan.
class Subprocess {
 public:
  static Result<std::unique_ptr<Subprocess>> Spawn(
      const SubprocessOptions& opts);

  ~Subprocess();
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  int pid() const { return pid_; }
  /// Parent->child pipe (child's stdin). -1 after CloseIn.
  int in_fd() const { return in_fd_; }
  /// Child->parent pipe (child's stdout).
  int out_fd() const { return out_fd_; }

  /// Closes the write end, delivering EOF to the child's stdin.
  void CloseIn();

  /// Non-blocking reap: nullopt while the child is still running.
  /// After the first successful reap, returns the cached ExitInfo.
  std::optional<ExitInfo> TryWait();

  /// Blocking reap.
  ExitInfo Wait();

  /// Sends `sig` (default SIGKILL). No-op once reaped.
  void Kill(int sig = 9);

 private:
  Subprocess() = default;

  int pid_ = -1;
  int in_fd_ = -1;
  int out_fd_ = -1;
  std::optional<ExitInfo> exit_info_;
};

/// Maximum accepted frame payload. Programs, paths, and result trails are
/// tiny; anything near this size is a corrupt stream, not a real frame.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Writes one frame, retrying EINTR and short writes. EPIPE (reader gone)
/// maps to kUnavailable so a dead supervisor/worker surfaces as a clean
/// Status, not a signal (the CLI ignores SIGPIPE).
Status WriteFrame(int fd, char type, std::string_view payload);

/// Blocking read of one frame. Returns nullopt on clean EOF at a frame
/// boundary; mid-frame EOF and oversized lengths are errors.
Result<std::optional<std::pair<char, std::string>>> ReadFrame(int fd);

/// Incremental decoder for the supervisor's poll loop: feed raw bytes in
/// with Append, pull complete frames out with Next. Tolerates frames
/// split across arbitrarily many reads.
class FrameBuffer {
 public:
  void Append(const char* data, size_t n) { buf_.append(data, n); }

  /// Extracts the next complete frame, or nullopt if more bytes are
  /// needed. A declared payload length beyond kMaxFramePayload poisons
  /// the buffer (error sticks; the stream is garbage from here on).
  Result<std::optional<std::pair<char, std::string>>> Next();

  /// True when a partial frame is buffered (EOF now = truncated stream).
  bool MidFrame() const { return !buf_.empty(); }

  void Reset() { buf_.clear(); poisoned_ = false; }

 private:
  std::string buf_;
  bool poisoned_ = false;
};

}  // namespace mitra::common

#endif  // MITRA_COMMON_SUBPROCESS_H_
