#include "common/status.h"

namespace mitra {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kSynthesisFailure:
      return "SynthesisFailure";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mitra
