#ifndef MITRA_JSON_JSON_WRITER_H_
#define MITRA_JSON_JSON_WRITER_H_

#include <string>

#include "common/status.h"
#include "hdt/hdt.h"

/// \file json_writer.h
/// Serializes an Hdt back to JSON text, inverting the parser's encoding:
/// children of a node are grouped by tag (in first-occurrence order); a
/// group of size one becomes an object member, a larger group becomes an
/// array. A data-carrying leaf becomes a primitive (unquoted when the data
/// is a number / `true` / `false` / `null`, a string otherwise).
/// Round-tripping text → Hdt → text → Hdt yields an identical tree.

namespace mitra::json {

/// Maximum object nesting the recursive writer accepts — the mirror of the
/// parser's kMaxNestingDepth guard. Any parsed tree serializes; towers built
/// programmatically beyond this fail cleanly instead of exhausting the stack.
inline constexpr int kMaxWriteDepth = 512;

struct JsonWriteOptions {
  /// Pretty-print with 2-space indentation.
  bool pretty = true;
};

/// Serializes the tree (the virtual `root` wrapper is not emitted). Fails
/// with kInvalidArgument when nesting exceeds kMaxWriteDepth.
Result<std::string> WriteJson(const hdt::Hdt& tree,
                              const JsonWriteOptions& opts = {});

}  // namespace mitra::json

#endif  // MITRA_JSON_JSON_WRITER_H_
