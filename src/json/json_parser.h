#ifndef MITRA_JSON_JSON_PARSER_H_
#define MITRA_JSON_JSON_PARSER_H_

#include <string>
#include <string_view>

#include "common/governor.h"
#include "common/status.h"
#include "hdt/hdt.h"

/// \file json_parser.h
/// JSON front-end plug-in (paper §3 "JSON documents as HDTs", §6, Fig. 14).
///
/// Parses a JSON document into an Hdt with the paper's encoding: each node
/// corresponds to a key-value pair (tag = key, data = value when the value
/// is primitive), and a key mapping to an array of length n yields n sibling
/// nodes with positions 0..n-1 (Example 2: `k: [18,45,32]` becomes
/// `(k,0,18),(k,1,45),(k,2,32)`).
///
/// Encoding details this implementation fixes (the paper leaves them open):
///  - the document is wrapped in a virtual root node tagged `root`
///    (matching Fig. 4a/Fig. 5, where the HDT root is above the top-level
///    object's keys);
///  - elements of a *top-level* array get tag `item`;
///  - elements of an array nested directly inside another array reuse the
///    enclosing array's key as their tag;
///  - numbers keep their source lexeme as data (no re-formatting);
///    `true` / `false` / `null` become the strings "true"/"false"/"null".
///
/// The full JSON grammar (RFC 8259) is supported, including string escape
/// sequences and \uXXXX (with surrogate pairs). Errors carry line:column.

namespace mitra::json {

struct JsonParseOptions {
  /// Optional resource governor: the parser checks it once per container
  /// value and charges bytes for every node it materializes, so a
  /// poisoned or pathological document surfaces kResourceExhausted
  /// instead of consuming unbounded memory/time.
  common::Governor* governor = nullptr;
};

/// Parses `input` into a hierarchical data tree.
Result<hdt::Hdt> ParseJson(std::string_view input);
Result<hdt::Hdt> ParseJson(std::string_view input,
                           const JsonParseOptions& opts);

/// Escapes a string for embedding between double quotes in JSON output.
std::string EscapeJsonString(std::string_view s);

}  // namespace mitra::json

#endif  // MITRA_JSON_JSON_PARSER_H_
