#include "json/json_writer.h"

#include <vector>

#include "common/strings.h"
#include "json/json_parser.h"

namespace mitra::json {

namespace {

/// Strict RFC 8259 number grammar. ParseNumber (strtod-based) is too
/// lenient here: it accepts "007", "1." or "-.5", and emitting those
/// unquoted would make the writer produce text our own parser rejects
/// (surfaced by the JSON round-trip fuzzer on string data "007").
bool IsJsonNumber(std::string_view s) {
  size_t i = 0;
  auto digit = [&](size_t k) {
    return k < s.size() && s[k] >= '0' && s[k] <= '9';
  };
  if (i < s.size() && s[i] == '-') ++i;
  if (!digit(i)) return false;
  if (s[i] == '0') {
    ++i;
  } else {
    while (digit(i)) ++i;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (!digit(i)) return false;
    while (digit(i)) ++i;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (!digit(i)) return false;
    while (digit(i)) ++i;
  }
  return i == s.size();
}

bool IsUnquotedPrimitive(std::string_view data) {
  if (data == "true" || data == "false" || data == "null") return true;
  return IsJsonNumber(data);
}

struct Writer {
  const hdt::Hdt& t;
  const JsonWriteOptions& opts;
  std::string out;

  void Indent(int depth) {
    if (opts.pretty) out.append(static_cast<size_t>(depth) * 2, ' ');
  }
  void Newline() {
    if (opts.pretty) out.push_back('\n');
  }

  /// Emits the primitive value of a leaf node.
  void EmitPrimitive(hdt::NodeId id) {
    std::string_view data = t.Data(id);
    if (IsUnquotedPrimitive(data)) {
      out.append(data);
    } else {
      out.push_back('"');
      out.append(EscapeJsonString(data));
      out.push_back('"');
    }
  }

  /// Emits the value denoted by one node: a primitive for data leaves,
  /// `{}` for empty non-data leaves, an object for internal nodes.
  Status EmitValue(hdt::NodeId id, int depth) {
    if (t.HasData(id)) {
      EmitPrimitive(id);
      return Status();
    }
    return EmitObject(id, depth);
  }

  /// Emits the children of `id` as a JSON object, grouping same-tag
  /// children into arrays.
  Status EmitObject(hdt::NodeId id, int depth) {
    if (depth > kMaxWriteDepth) {
      return Status::InvalidArgument("tree nesting too deep to serialize (>" +
                                     std::to_string(kMaxWriteDepth) + ")");
    }
    const std::span<const hdt::NodeId> children = t.Children(id);
    if (children.empty()) {
      out.append("{}");
      return Status();
    }
    // Group by tag in first-occurrence order.
    std::vector<hdt::TagId> order;
    std::vector<std::vector<hdt::NodeId>> groups;
    for (hdt::NodeId c : children) {
      hdt::TagId tag = t.node(c).tag;
      size_t gi = 0;
      for (; gi < order.size(); ++gi) {
        if (order[gi] == tag) break;
      }
      if (gi == order.size()) {
        order.push_back(tag);
        groups.emplace_back();
      }
      groups[gi].push_back(c);
    }
    out.push_back('{');
    Newline();
    for (size_t gi = 0; gi < order.size(); ++gi) {
      Indent(depth + 1);
      out.push_back('"');
      out.append(EscapeJsonString(t.TagName(order[gi])));
      out.append("\": ");
      const auto& group = groups[gi];
      if (group.size() == 1) {
        MITRA_RETURN_IF_ERROR(EmitValue(group[0], depth + 1));
      } else {
        out.push_back('[');
        Newline();
        for (size_t i = 0; i < group.size(); ++i) {
          Indent(depth + 2);
          MITRA_RETURN_IF_ERROR(EmitValue(group[i], depth + 2));
          if (i + 1 < group.size()) out.push_back(',');
          Newline();
        }
        Indent(depth + 1);
        out.push_back(']');
      }
      if (gi + 1 < order.size()) out.push_back(',');
      Newline();
    }
    Indent(depth);
    out.push_back('}');
    return Status();
  }
};

}  // namespace

Result<std::string> WriteJson(const hdt::Hdt& tree,
                              const JsonWriteOptions& opts) {
  if (tree.empty()) return std::string("{}");
  Writer w{tree, opts, {}};
  MITRA_RETURN_IF_ERROR(w.EmitObject(tree.root(), 0));
  return std::move(w.out);
}

}  // namespace mitra::json
