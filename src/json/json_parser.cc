#include "json/json_parser.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

#include "obs/obs.h"

namespace mitra::json {

namespace {

/// Maximum value nesting the recursive-descent parser accepts. Keeps
/// worst-case stack usage a few hundred frames regardless of input size.
constexpr int kMaxNestingDepth = 256;

/// Recursive-descent RFC 8259 parser building the HDT encoding directly.
class Parser {
 public:
  explicit Parser(std::string_view in, common::Governor* gov = nullptr)
      : in_(in), gov_(gov) {}

  Result<hdt::Hdt> Parse() {
    hdt::Hdt tree;
    hdt::NodeId root = tree.AddRoot("root");
    SkipWs();
    if (AtEnd()) return Err("empty document");
    char c = Peek();
    if (c == '{') {
      MITRA_RETURN_IF_ERROR(ParseObjectMembers(&tree, root, 0));
    } else if (c == '[') {
      MITRA_RETURN_IF_ERROR(ParseArray(&tree, root, "item", 0));
    } else {
      MITRA_ASSIGN_OR_RETURN(std::string lexeme, ParsePrimitive());
      tree.AddChild(root, "value", lexeme);
    }
    SkipWs();
    if (!AtEnd()) return Err("trailing content after document");
    return tree;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  void Advance() {
    if (in_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  bool Consume(char c) {
    if (!AtEnd() && Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }
  void SkipWs() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      Advance();
    }
  }
  Status Err(std::string msg) const {
    return Status::ParseError("JSON " + std::to_string(line_) + ":" +
                              std::to_string(col_) + ": " + std::move(msg));
  }

  /// Parses the members of an object (including braces) and attaches each
  /// key-value pair under `parent`.
  Status ParseObjectMembers(hdt::Hdt* tree, hdt::NodeId parent,
                            int depth) {
    if (depth > kMaxNestingDepth) return Err("value nesting too deep");
    if (!Consume('{')) return Err("expected '{'");
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      MITRA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':' after object key");
      SkipWs();
      MITRA_RETURN_IF_ERROR(ParseValue(tree, parent, key, depth));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Err("expected ',' or '}' in object");
    }
  }

  /// Parses a value appearing under key `key` and encodes it under `parent`.
  Status ParseValue(hdt::Hdt* tree, hdt::NodeId parent,
                    const std::string& key, int depth) {
    MITRA_GOV_CHECK(gov_, "json/parse");
    if (gov_ != nullptr) {
      MITRA_RETURN_IF_ERROR(gov_->ChargeBytes(
          key.size() + sizeof(hdt::Node), "alloc/json-node"));
    }
    if (AtEnd()) return Err("unexpected end of input in value");
    char c = Peek();
    if (c == '{') {
      hdt::NodeId n = tree->AddChild(parent, key);
      return ParseObjectMembers(tree, n, depth + 1);
    }
    if (c == '[') {
      return ParseArray(tree, parent, key, depth + 1);
    }
    MITRA_ASSIGN_OR_RETURN(std::string lexeme, ParsePrimitive());
    tree->AddChild(parent, key, lexeme);
    return Status::OK();
  }

  /// Parses an array; element i becomes the i'th sibling tagged `key`
  /// under `parent` (Example 2's encoding).
  Status ParseArray(hdt::Hdt* tree, hdt::NodeId parent,
                    const std::string& key, int depth) {
    if (depth > kMaxNestingDepth) return Err("value nesting too deep");
    if (!Consume('[')) return Err("expected '['");
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWs();
      MITRA_GOV_CHECK(gov_, "json/parse");
      if (gov_ != nullptr) {
        MITRA_RETURN_IF_ERROR(gov_->ChargeBytes(
            key.size() + sizeof(hdt::Node), "alloc/json-node"));
      }
      if (AtEnd()) return Err("unterminated array");
      char c = Peek();
      if (c == '{') {
        hdt::NodeId n = tree->AddChild(parent, key);
        MITRA_RETURN_IF_ERROR(ParseObjectMembers(tree, n, depth + 1));
      } else if (c == '[') {
        // Nested array: wrap in a node and reuse the key for elements.
        hdt::NodeId n = tree->AddChild(parent, key);
        MITRA_RETURN_IF_ERROR(ParseArray(tree, n, key, depth + 1));
      } else {
        MITRA_ASSIGN_OR_RETURN(std::string lexeme, ParsePrimitive());
        tree->AddChild(parent, key, lexeme);
      }
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Err("expected ',' or ']' in array");
    }
  }

  /// Parses a string, number, or literal, returning its data string.
  Result<std::string> ParsePrimitive() {
    char c = Peek();
    if (c == '"') return ParseString();
    if (c == 't') {
      if (ConsumeLit("true")) return std::string("true");
      return Err("bad literal");
    }
    if (c == 'f') {
      if (ConsumeLit("false")) return std::string("false");
      return Err("bad literal");
    }
    if (c == 'n') {
      if (ConsumeLit("null")) return std::string("null");
      return Err("bad literal");
    }
    return ParseNumberLexeme();
  }

  bool ConsumeLit(std::string_view lit) {
    if (in_.substr(pos_).substr(0, lit.size()) == lit) {
      for (size_t i = 0; i < lit.size(); ++i) Advance();
      return true;
    }
    return false;
  }

  Result<std::string> ParseNumberLexeme() {
    size_t start = pos_;
    Consume('-');
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Err("expected a digit in number");
    }
    if (Peek() == '0') {
      Advance();
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    if (Consume('.')) {
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Err("expected a digit after decimal point");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      Advance();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) Advance();
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Err("expected a digit in exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (true) {
      if (AtEnd()) return Err("unterminated string");
      char c = Peek();
      if (c == '"') {
        Advance();
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        Advance();
        continue;
      }
      Advance();  // backslash
      if (AtEnd()) return Err("unterminated escape");
      char e = Peek();
      Advance();
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          MITRA_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (!ConsumeLit("\\u")) return Err("lone high surrogate");
            MITRA_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Err("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Err("lone low surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Err(std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (AtEnd()) return Err("unterminated \\u escape");
      char c = Peek();
      int d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        d = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = c - 'A' + 10;
      } else {
        return Err("bad hex digit in \\u escape");
      }
      v = v * 16 + static_cast<uint32_t>(d);
      Advance();
    }
    return v;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string_view in_;
  common::Governor* gov_ = nullptr;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

namespace {

Result<hdt::Hdt> ParseCounted(std::string_view input,
                              common::Governor* governor) {
  MITRA_SPAN(span, "parse/json");
  auto tree = Parser(input, governor).Parse();
  MITRA_COUNT("parse/json/docs", 1);
  MITRA_COUNT("parse/json/bytes", input.size());
  if (tree.ok()) MITRA_COUNT("parse/json/nodes", tree->NumElements());
  return tree;
}

}  // namespace

Result<hdt::Hdt> ParseJson(std::string_view input) {
  return ParseCounted(input, nullptr);
}

Result<hdt::Hdt> ParseJson(std::string_view input,
                           const JsonParseOptions& opts) {
  return ParseCounted(input, opts.governor);
}

std::string EscapeJsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace mitra::json
