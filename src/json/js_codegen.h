#ifndef MITRA_JSON_JS_CODEGEN_H_
#define MITRA_JSON_JS_CODEGEN_H_

#include <string>

#include "dsl/ast.h"

/// \file js_codegen.h
/// JSON plug-in backend (paper §6, Fig. 14): translates a synthesized DSL
/// program into an executable JavaScript program. The emitted module
/// exposes `migrate(doc)` which takes a parsed JSON value and returns an
/// array of row arrays; a small self-contained runtime (the "built-in
/// functions" the paper excludes from its LOC count) converts the JSON
/// value into the HDT encoding and provides the DSL navigation operators.

namespace mitra::json {

/// Generates the JavaScript program text for `p`.
std::string GenerateJavaScript(const dsl::Program& p);

/// Lines of generated code excluding the runtime scaffold, comments, and
/// blank lines — the paper's Table 1 "LOC" metric.
int CountEffectiveLoc(const std::string& code);

}  // namespace mitra::json

#endif  // MITRA_JSON_JS_CODEGEN_H_
