#ifndef MITRA_HTML_HTML_PARSER_H_
#define MITRA_HTML_HTML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "hdt/hdt.h"

/// \file html_parser.h
/// HTML front-end plug-in. The paper notes MITRA "can be easily extended
/// to handle other forms of hierarchical documents (e.g., HTML and HDF)
/// by implementing suitable plug-ins" (§6) — this is that HTML plug-in:
/// a tag-soup-tolerant parser producing the same HDT encoding as the XML
/// plug-in (attributes as leaf children; pure text as the element's own
/// data; mixed-content text runs as `text` children), so scraped pages
/// can be used directly as synthesis inputs.
///
/// Leniency (in contrast to the strict XML parser):
///  - tag and attribute names are case-insensitive (normalized to lower
///    case);
///  - void elements (`br`, `img`, `input`, …) never take children;
///  - implicit closing: a new `li` closes an open `li`, `td`/`th` close
///    each other, `tr` closes `tr`, `p` is closed by block elements, …;
///  - a stray end tag that matches an outer element closes everything up
///    to it; one that matches nothing is ignored;
///  - unclosed elements are closed at end of input;
///  - unknown entities pass through literally;
///  - attributes may be unquoted or value-less (`<input disabled>`).

namespace mitra::html {

/// Parses an HTML document (or fragment) into a hierarchical data tree.
/// Fragments without a single root are wrapped in a synthetic `html`
/// node. Only unrecoverable situations (e.g. empty input) are errors.
Result<hdt::Hdt> ParseHtml(std::string_view input);

}  // namespace mitra::html

#endif  // MITRA_HTML_HTML_PARSER_H_
