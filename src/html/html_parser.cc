#include "html/html_parser.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "common/strings.h"
#include "xml/xml_parser.h"

namespace mitra::html {

namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool IsVoidElement(const std::string& tag) {
  static const std::set<std::string> kVoid{
      "area", "base",  "br",    "col",   "embed", "hr",  "img", "input",
      "link", "meta",  "param", "source", "track", "wbr"};
  return kVoid.count(tag) > 0;
}

bool IsRawText(const std::string& tag) {
  return tag == "script" || tag == "style";
}

/// HTML implicit-closing rules: opening `incoming` closes `open`.
bool ImplicitlyCloses(const std::string& open, const std::string& incoming) {
  static const std::set<std::string> kBlocks{
      "address", "article", "aside",  "blockquote", "div",  "dl",
      "fieldset", "footer", "form",   "h1",         "h2",   "h3",
      "h4",       "h5",     "h6",     "header",     "hr",   "li",
      "main",     "nav",    "ol",     "p",          "pre",  "section",
      "table",    "ul"};
  if (open == "li" && incoming == "li") return true;
  if (open == "p" && kBlocks.count(incoming)) return true;
  if ((open == "td" || open == "th") &&
      (incoming == "td" || incoming == "th" || incoming == "tr" ||
       incoming == "tbody" || incoming == "thead" || incoming == "tfoot")) {
    return true;
  }
  if (open == "tr" && (incoming == "tr" || incoming == "tbody" ||
                       incoming == "thead" || incoming == "tfoot")) {
    return true;
  }
  if ((open == "thead" || open == "tbody" || open == "tfoot") &&
      (incoming == "tbody" || incoming == "tfoot")) {
    return true;
  }
  if (open == "option" && (incoming == "option" || incoming == "optgroup")) {
    return true;
  }
  if ((open == "dt" || open == "dd") &&
      (incoming == "dt" || incoming == "dd")) {
    return true;
  }
  return false;
}

/// Lenient entity decoding: known/numeric entities decode, unknown ones
/// pass through literally.
std::string DecodeLenient(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out.push_back(s[i]);
      continue;
    }
    size_t semi = s.find(';', i);
    if (semi == std::string_view::npos || semi - i > 12) {
      out.push_back('&');
      continue;
    }
    std::string_view ent = s.substr(i, semi - i + 1);
    if (ent == "&nbsp;") {
      out += "\xc2\xa0";
      i = semi;
      continue;
    }
    auto decoded = xml::DecodeEntities(ent);
    if (decoded.ok()) {
      out += *decoded;
      i = semi;
    } else {
      out.push_back('&');  // unknown entity: keep literally
    }
  }
  return out;
}

/// Intermediate element tree (built with the tag-soup stack discipline,
/// then converted to the HDT encoding).
struct El {
  std::string tag;
  std::vector<std::pair<std::string, std::string>> attrs;
  struct Child {
    bool is_text;
    std::string text;  // when is_text
    size_t el;         // when !is_text
  };
  std::vector<Child> children;
};

class Parser {
 public:
  explicit Parser(std::string_view in) : in_(in) {}

  Result<hdt::Hdt> Parse() {
    arena_.push_back(El{"#document", {}, {}});
    stack_.push_back(0);
    while (!AtEnd()) Step();
    // Encode. Single top-level element: that is the root; otherwise wrap.
    const El& doc = arena_[0];
    size_t element_children = 0;
    size_t only = 0;
    bool has_text = false;
    for (const El::Child& c : doc.children) {
      if (c.is_text) {
        has_text = true;
      } else {
        ++element_children;
        only = c.el;
      }
    }
    hdt::Hdt tree;
    if (element_children == 1 && !has_text) {
      EncodeElement(arena_[only], hdt::kInvalidNode, &tree);
    } else if (doc.children.empty()) {
      return Status::ParseError("HTML document has no content");
    } else {
      El wrapper{"html", {}, doc.children};
      EncodeElement(wrapper, hdt::kInvalidNode, &tree);
    }
    return tree;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool ConsumeLit(std::string_view lit) {
    if (in_.substr(pos_).substr(0, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }
  void SkipUntil(std::string_view terminator) {
    size_t at = in_.find(terminator, pos_);
    pos_ = at == std::string_view::npos ? in_.size()
                                        : at + terminator.size();
  }

  El& Top() { return arena_[stack_.back()]; }

  void AppendText(std::string_view raw) {
    std::string_view trimmed = TrimWhitespace(raw);
    if (trimmed.empty()) return;
    Top().children.push_back(El::Child{true, DecodeLenient(trimmed), 0});
  }

  void Step() {
    size_t lt = in_.find('<', pos_);
    if (lt == std::string_view::npos) {
      AppendText(in_.substr(pos_));
      pos_ = in_.size();
      return;
    }
    if (lt > pos_) {
      AppendText(in_.substr(pos_, lt - pos_));
      pos_ = lt;
    }
    if (ConsumeLit("<!--")) {
      SkipUntil("-->");
      return;
    }
    if (ConsumeLit("<!")) {  // DOCTYPE etc.
      SkipUntil(">");
      return;
    }
    if (ConsumeLit("<?")) {  // processing instruction
      SkipUntil(">");
      return;
    }
    if (ConsumeLit("</")) {
      HandleEndTag();
      return;
    }
    // "<" not starting a tag: literal text.
    if (pos_ + 1 >= in_.size() ||
        !std::isalpha(static_cast<unsigned char>(in_[pos_ + 1]))) {
      AppendText("<");
      ++pos_;
      return;
    }
    ++pos_;  // consume '<'
    HandleStartTag();
  }

  std::string ReadName() {
    size_t start = pos_;
    while (!AtEnd() &&
           (std::isalnum(static_cast<unsigned char>(Peek())) ||
            Peek() == '-' || Peek() == '_' || Peek() == ':')) {
      ++pos_;
    }
    return Lower(in_.substr(start, pos_ - start));
  }

  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  void HandleStartTag() {
    std::string tag = ReadName();
    El el;
    el.tag = tag;
    // Attributes.
    while (true) {
      SkipWs();
      if (AtEnd() || Peek() == '>' || Peek() == '/') break;
      std::string name = ReadName();
      if (name.empty()) {  // junk character; skip it
        ++pos_;
        continue;
      }
      SkipWs();
      std::string value;
      if (!AtEnd() && Peek() == '=') {
        ++pos_;
        SkipWs();
        if (!AtEnd() && (Peek() == '"' || Peek() == '\'')) {
          char q = Peek();
          ++pos_;
          size_t start = pos_;
          while (!AtEnd() && Peek() != q) ++pos_;
          value = DecodeLenient(in_.substr(start, pos_ - start));
          if (!AtEnd()) ++pos_;
        } else {
          size_t start = pos_;
          while (!AtEnd() && !std::isspace(
                                 static_cast<unsigned char>(Peek())) &&
                 Peek() != '>' && Peek() != '/') {
            ++pos_;
          }
          value = DecodeLenient(in_.substr(start, pos_ - start));
        }
      }
      el.attrs.emplace_back(std::move(name), std::move(value));
    }
    bool self_closed = false;
    if (!AtEnd() && Peek() == '/') {
      self_closed = true;
      ++pos_;
    }
    if (!AtEnd() && Peek() == '>') ++pos_;

    // Implicit closing.
    while (stack_.size() > 1 && ImplicitlyCloses(Top().tag, tag)) {
      stack_.pop_back();
    }

    size_t idx = arena_.size();
    arena_.push_back(std::move(el));
    arena_[stack_.back()].children.push_back(El::Child{false, "", idx});

    if (self_closed || IsVoidElement(tag)) return;
    if (IsRawText(tag)) {
      std::string close = "</" + tag;
      size_t at = in_.find(close, pos_);
      size_t end = at == std::string_view::npos ? in_.size() : at;
      std::string_view raw = TrimWhitespace(in_.substr(pos_, end - pos_));
      if (!raw.empty()) {
        arena_[idx].children.push_back(
            El::Child{true, std::string(raw), 0});
      }
      pos_ = end;
      if (at != std::string_view::npos) SkipUntil(">");
      return;
    }
    stack_.push_back(idx);
  }

  void HandleEndTag() {
    std::string tag = ReadName();
    SkipUntil(">");
    // Pop to the matching open element, if any; ignore stray end tags.
    for (size_t i = stack_.size(); i-- > 1;) {
      if (arena_[stack_[i]].tag == tag) {
        stack_.resize(i);
        return;
      }
    }
  }

  /// Converts the intermediate tree to the HDT encoding shared with the
  /// XML plug-in.
  void EncodeElement(const El& el, hdt::NodeId parent, hdt::Hdt* tree) {
    hdt::NodeId node = parent == hdt::kInvalidNode
                           ? tree->AddRoot(el.tag)
                           : tree->AddChild(parent, el.tag);
    for (const auto& [name, value] : el.attrs) {
      tree->AddAttribute(node, name, value);
    }
    bool has_element_child = false;
    size_t text_runs = 0;
    for (const El::Child& c : el.children) {
      if (c.is_text) ++text_runs;
      else has_element_child = true;
    }
    if (el.attrs.empty() && !has_element_child && text_runs == 1) {
      for (const El::Child& c : el.children) {
        if (c.is_text) tree->SetLeafData(node, c.text);
      }
      return;
    }
    for (const El::Child& c : el.children) {
      if (c.is_text) {
        tree->AddTextRun(node, c.text);
      } else {
        EncodeElement(arena_[c.el], node, tree);
      }
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
  std::vector<El> arena_;
  std::vector<size_t> stack_;
};

}  // namespace

Result<hdt::Hdt> ParseHtml(std::string_view input) {
  if (TrimWhitespace(input).empty()) {
    return Status::ParseError("empty HTML input");
  }
  return Parser(input).Parse();
}

}  // namespace mitra::html
