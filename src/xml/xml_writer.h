#ifndef MITRA_XML_XML_WRITER_H_
#define MITRA_XML_XML_WRITER_H_

#include <string>

#include "common/status.h"
#include "hdt/hdt.h"

/// \file xml_writer.h
/// Serializes an Hdt back to XML text. The inverse of the parser's
/// encoding, modulo attribute/element distinction (all HDT children are
/// emitted as nested elements; children tagged `text` are emitted as
/// character data). Round-tripping text → Hdt → text → Hdt yields an
/// identical tree, which is the property the tests assert.

namespace mitra::xml {

/// Maximum element nesting the recursive writer accepts — the mirror of
/// the parser's kMaxNestingDepth guard (any parsed tree serializes;
/// programmatically built towers beyond this fail cleanly instead of
/// exhausting the stack).
inline constexpr int kMaxWriteDepth = 512;

struct WriteOptions {
  /// Pretty-print with 2-space indentation and newlines.
  bool pretty = true;
  /// Emit an `<?xml version="1.0"?>` prolog.
  bool prolog = false;
};

/// Serializes the subtree rooted at `tree.root()`. Fails with
/// kInvalidArgument when nesting exceeds kMaxWriteDepth.
Result<std::string> WriteXml(const hdt::Hdt& tree,
                             const WriteOptions& opts = {});

}  // namespace mitra::xml

#endif  // MITRA_XML_XML_WRITER_H_
