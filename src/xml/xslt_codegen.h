#ifndef MITRA_XML_XSLT_CODEGEN_H_
#define MITRA_XML_XSLT_CODEGEN_H_

#include <string>
#include <vector>

#include "dsl/ast.h"

/// \file xslt_codegen.h
/// XML plug-in backend (paper §6, Fig. 14): translates a synthesized DSL
/// program into an executable XSLT 1.0 stylesheet.
///
/// Mapping from DSL to XPath:
///   children(π, tag)        →  π/tag
///   pchildren(π, tag, pos)  →  π/tag[pos+1]       (XPath is 1-based)
///   descendants(π, tag)     →  π//tag
///   parent(ϕ)               →  ϕ/..
///   child(ϕ, tag, pos)      →  ϕ/tag[pos+1]
///
/// Attribute nodes of the HDT encoding map to `@tag` and text-run nodes to
/// `text()`; since the generator cannot know which tags were attributes in
/// the source document, it emits a union step `(tag|@tag)` where a tag
/// could be either — XPath unions are free of false positives because an
/// element never has both forms in the documents MITRA targets.
///
/// The generated stylesheet emits one `row` element per output tuple with
/// one `col` element per column — the same row/column text layout the
/// MITRA artifact produced. Predicate checks are hoisted to the outermost
/// for-each at which all referenced columns are bound (the App. C
/// early-filtering structure).

namespace mitra::xml {

/// Generates the XSLT program text for `p`.
std::string GenerateXslt(const dsl::Program& p);

/// Counts the lines of the generated program, excluding built-in scaffold
/// (stylesheet boilerplate), matching the paper's Table 1 "LOC" metric
/// which excludes built-in functions and input parsing.
int CountEffectiveLoc(const std::string& code);

}  // namespace mitra::xml

#endif  // MITRA_XML_XSLT_CODEGEN_H_
