#include "xml/xml_parser.h"

#include <cctype>
#include <vector>

#include "common/strings.h"
#include "obs/obs.h"

namespace mitra::xml {

namespace {

/// Maximum element nesting the recursive-descent parser accepts. Keeps
/// worst-case stack usage a few hundred frames regardless of input size.
constexpr int kMaxNestingDepth = 256;

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

/// Recursive-descent XML parser building the HDT encoding directly.
class Parser {
 public:
  explicit Parser(std::string_view in, common::Governor* gov = nullptr)
      : in_(in), gov_(gov) {}

  Result<hdt::Hdt> Parse() {
    SkipProlog();
    if (AtEnd()) return Err("document has no root element");
    hdt::Hdt tree;
    MITRA_RETURN_IF_ERROR(ParseElement(&tree, hdt::kInvalidNode));
    SkipMisc();
    if (!AtEnd()) return Err("trailing content after root element");
    return tree;
  }

 private:
  // --- low-level cursor ---------------------------------------------------
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < in_.size() ? in_[pos_ + off] : '\0';
  }
  void Advance() {
    if (in_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  bool Consume(char c) {
    if (!AtEnd() && Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeLit(std::string_view lit) {
    if (in_.substr(pos_).substr(0, lit.size()) == lit) {
      for (size_t i = 0; i < lit.size(); ++i) Advance();
      return true;
    }
    return false;
  }
  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }
  Status Err(std::string msg) const {
    return Status::ParseError("XML " + std::to_string(line_) + ":" +
                              std::to_string(col_) + ": " + std::move(msg));
  }

  // --- structure ----------------------------------------------------------

  void SkipMisc() {
    // Whitespace, comments, processing instructions between markup.
    while (true) {
      SkipWs();
      if (ConsumeLit("<!--")) {
        SkipUntil("-->");
      } else if (pos_ + 1 < in_.size() && Peek() == '<' &&
                 PeekAt(1) == '?') {
        SkipUntil("?>");
      } else {
        return;
      }
    }
  }

  void SkipProlog() {
    while (true) {
      SkipWs();
      if (ConsumeLit("<?")) {
        SkipUntil("?>");
      } else if (ConsumeLit("<!--")) {
        SkipUntil("-->");
      } else if (ConsumeLit("<!DOCTYPE")) {
        // Skip to the matching '>' (handles one level of [] internal subset).
        int depth = 0;
        while (!AtEnd()) {
          char c = Peek();
          Advance();
          if (c == '[') ++depth;
          if (c == ']') --depth;
          if (c == '>' && depth <= 0) break;
        }
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    while (!AtEnd() && !ConsumeLit(terminator)) Advance();
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Err("expected a name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<std::string> ParseAttrValue() {
    char quote = Peek();
    if (quote != '"' && quote != '\'') return Err("expected quoted value");
    Advance();
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) Advance();
    if (AtEnd()) return Err("unterminated attribute value");
    std::string_view raw = in_.substr(start, pos_ - start);
    Advance();  // closing quote
    return DecodeEntities(raw);
  }

  /// Parses one element; creates the node under `parent` (or the root).
  Status ParseElement(hdt::Hdt* tree, hdt::NodeId parent, int depth = 0) {
    // Recursive descent: bound nesting so hostile input degrades to a
    // ParseError instead of exhausting the stack.
    if (depth > kMaxNestingDepth) return Err("element nesting too deep");
    MITRA_GOV_CHECK(gov_, "xml/parse");
    if (!Consume('<')) return Err("expected '<'");
    MITRA_ASSIGN_OR_RETURN(std::string name, ParseName());
    if (gov_ != nullptr) {
      MITRA_RETURN_IF_ERROR(gov_->ChargeBytes(
          name.size() + sizeof(hdt::Node), "alloc/xml-node"));
    }

    struct Attr {
      std::string name, value;
    };
    std::vector<Attr> attrs;
    while (true) {
      SkipWs();
      if (AtEnd()) return Err("unterminated start tag <" + name);
      if (Peek() == '/' || Peek() == '>') break;
      MITRA_ASSIGN_OR_RETURN(std::string aname, ParseName());
      SkipWs();
      if (!Consume('=')) return Err("expected '=' after attribute name");
      SkipWs();
      MITRA_ASSIGN_OR_RETURN(std::string avalue, ParseAttrValue());
      attrs.push_back({std::move(aname), std::move(avalue)});
    }

    bool self_closing = Consume('/');
    if (!Consume('>')) return Err("expected '>'");

    hdt::NodeId node = parent == hdt::kInvalidNode
                           ? tree->AddRoot(name)
                           : tree->AddChild(parent, name);
    for (const Attr& a : attrs) tree->AddAttribute(node, a.name, a.value);
    if (self_closing) return Status::OK();

    // Content: interleave text runs and child elements until </name>.
    std::vector<std::string> text_runs;
    std::string pending_text;
    bool saw_child_element = !attrs.empty();
    auto flush_text = [&]() {
      std::string_view trimmed = TrimWhitespace(pending_text);
      if (!trimmed.empty()) text_runs.emplace_back(trimmed);
      pending_text.clear();
    };

    while (true) {
      if (AtEnd()) return Err("unterminated element <" + name + ">");
      if (Peek() == '<') {
        if (ConsumeLit("<!--")) {
          SkipUntil("-->");
          continue;
        }
        if (ConsumeLit("<![CDATA[")) {
          size_t start = pos_;
          while (!AtEnd() && !(Peek() == ']' && PeekAt(1) == ']' &&
                               PeekAt(2) == '>')) {
            Advance();
          }
          if (AtEnd()) return Err("unterminated CDATA section");
          pending_text.append(in_.substr(start, pos_ - start));
          ConsumeLit("]]>");
          continue;
        }
        if (PeekAt(1) == '?') {
          SkipUntil("?>");
          continue;
        }
        if (PeekAt(1) == '/') {
          Advance();  // '<'
          Advance();  // '/'
          MITRA_ASSIGN_OR_RETURN(std::string close, ParseName());
          SkipWs();
          if (!Consume('>')) return Err("expected '>' in end tag");
          if (close != name) {
            return Err("mismatched end tag </" + close + ">, expected </" +
                       name + ">");
          }
          break;
        }
        // A child element: any buffered text becomes a `text` child run.
        flush_text();
        saw_child_element = true;
        // Emit text runs seen so far in document order before the child.
        for (std::string& run : text_runs) {
          tree->AddTextRun(node, run);
        }
        text_runs.clear();
        MITRA_RETURN_IF_ERROR(ParseElement(tree, node, depth + 1));
      } else if (Peek() == '&') {
        size_t start = pos_;
        while (!AtEnd() && Peek() != ';') Advance();
        if (AtEnd()) return Err("unterminated entity reference");
        Advance();  // ';'
        MITRA_ASSIGN_OR_RETURN(
            std::string decoded,
            DecodeEntities(in_.substr(start, pos_ - start)));
        pending_text.append(decoded);
      } else {
        pending_text.push_back(Peek());
        Advance();
      }
    }

    flush_text();
    if (!saw_child_element && text_runs.size() == 1 && tree->IsLeaf(node)) {
      // Pure text content: store as the element's own data (Fig. 4a).
      tree->SetLeafData(node, text_runs[0]);
    } else {
      for (std::string& run : text_runs) tree->AddTextRun(node, run);
    }
    return Status::OK();
  }

  std::string_view in_;
  common::Governor* gov_ = nullptr;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

namespace {

Result<hdt::Hdt> ParseCounted(std::string_view input,
                              common::Governor* governor) {
  MITRA_SPAN(span, "parse/xml");
  auto tree = Parser(input, governor).Parse();
  MITRA_COUNT("parse/xml/docs", 1);
  MITRA_COUNT("parse/xml/bytes", input.size());
  if (tree.ok()) MITRA_COUNT("parse/xml/nodes", tree->NumElements());
  return tree;
}

}  // namespace

Result<hdt::Hdt> ParseXml(std::string_view input) {
  return ParseCounted(input, nullptr);
}

Result<hdt::Hdt> ParseXml(std::string_view input,
                          const XmlParseOptions& opts) {
  return ParseCounted(input, opts.governor);
}

Result<std::string> DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out.push_back(s[i]);
      continue;
    }
    size_t semi = s.find(';', i);
    if (semi == std::string_view::npos) {
      return Status::ParseError("unterminated entity in '" + std::string(s) +
                                "'");
    }
    std::string_view ent = s.substr(i + 1, semi - i - 1);
    if (ent == "lt") {
      out.push_back('<');
    } else if (ent == "gt") {
      out.push_back('>');
    } else if (ent == "amp") {
      out.push_back('&');
    } else if (ent == "quot") {
      out.push_back('"');
    } else if (ent == "apos") {
      out.push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
      std::string_view digits = ent.substr(hex ? 2 : 1);
      if (digits.empty()) return Status::ParseError("bad numeric entity");
      uint32_t code = 0;
      for (char c : digits) {
        int d;
        if (c >= '0' && c <= '9') {
          d = c - '0';
        } else if (hex && c >= 'a' && c <= 'f') {
          d = c - 'a' + 10;
        } else if (hex && c >= 'A' && c <= 'F') {
          d = c - 'A' + 10;
        } else {
          return Status::ParseError("bad numeric entity &" + std::string(ent) +
                                    ";");
        }
        code = code * (hex ? 16 : 10) + static_cast<uint32_t>(d);
        if (code > 0x10FFFF) {
          return Status::ParseError("numeric entity out of range");
        }
      }
      if (code >= 0xD800 && code <= 0xDFFF) {
        // UTF-16 surrogate halves are not XML Chars; encoding them would
        // produce ill-formed UTF-8 (CESU-8) that cannot round-trip.
        return Status::ParseError("numeric entity &" + std::string(ent) +
                                  "; is a surrogate code point");
      }
      // UTF-8 encode.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      return Status::ParseError("unknown entity &" + std::string(ent) + ";");
    }
    i = semi;
  }
  return out;
}

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace mitra::xml
