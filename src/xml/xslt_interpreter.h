#ifndef MITRA_XML_XSLT_INTERPRETER_H_
#define MITRA_XML_XSLT_INTERPRETER_H_

#include <string>

#include "common/status.h"
#include "hdt/hdt.h"
#include "hdt/table.h"

/// \file xslt_interpreter.h
/// An interpreter for the XSLT subset emitted by GenerateXslt, so the
/// generated stylesheets can be *executed* and validated against the
/// in-library executor (the paper ran its XSLT under a full processor;
/// none is available offline, and this closes the same loop).
///
/// Supported stylesheet structure: one template with nested
/// `xsl:for-each` / `xsl:variable` (select=".") / `xsl:if` and a `row` of
/// `col`/`xsl:value-of` leaves. Supported XPath subset (exactly what the
/// generator emits):
///
///   /*/a/b[2]/descendant::c/@d/text()[1]  absolute location paths
///   $cN/../a[1]                            variable-relative paths
///   (A | B)                                unions
///   generate-id(P) = generate-id(Q)        node-identity comparison
///   P = Q, P != Q, P < 3, …                existential node-set compares
///   E and E, E or E, not(E)                boolean connectives
///
/// Semantics follow the HDT encoding contract documented in
/// xslt_codegen.h: `@name` matches the leaf child encoding an attribute,
/// `text()` matches `text`-tagged children, and comparisons use the
/// numeric-aware ordering of the DSL evaluator.

namespace mitra::xml {

/// Runs a generated stylesheet against a document (as HDT). Returns the
/// emitted rows (one per `row` element, one cell per `col`).
Result<hdt::Table> RunXslt(const std::string& stylesheet, const hdt::Hdt& doc);

}  // namespace mitra::xml

#endif  // MITRA_XML_XSLT_INTERPRETER_H_
