#include "xml/xslt_codegen.h"

#include <algorithm>

#include "common/strings.h"
#include "xml/xml_parser.h"

namespace mitra::xml {

namespace {

using dsl::Atom;
using dsl::ColOp;
using dsl::ColStep;
using dsl::ColumnExtractor;
using dsl::CmpOp;
using dsl::Dnf;
using dsl::Literal;
using dsl::NodeExtractor;
using dsl::NodeOp;
using dsl::NodeStep;
using dsl::Program;

/// Renders one column-extractor step as a plain (element-form) XPath step.
std::string ColStepXPath(const ColStep& st) {
  std::string tag = st.tag == "text" ? "text()" : st.tag;
  switch (st.op) {
    case ColOp::kChildren:
      return tag;
    case ColOp::kPChildren:
      return tag + "[" + std::to_string(st.pos + 1) + "]";
    case ColOp::kDescendants:
      return "descendant::" + tag;
  }
  return "";
}

/// Attribute-form of a final step, or empty when it cannot address an
/// attribute (text steps, positional selections beyond 0).
std::string ColStepAttrXPath(const ColStep& st) {
  if (st.tag == "text") return "";
  switch (st.op) {
    case ColOp::kChildren:
      return "@" + st.tag;
    case ColOp::kPChildren:
      return st.pos == 0 ? "@" + st.tag : "";
    case ColOp::kDescendants:
      return "descendant-or-self::*/@" + st.tag;
  }
  return "";
}

/// Absolute XPath of a column extractor, rooted at the document element.
/// Since attributes can only terminate a path, only the final step needs
/// the element/attribute union — expressed as a union of two complete
/// paths (XPath 1.0 has no parenthesized path steps).
std::string ColumnXPath(const ColumnExtractor& pi) {
  std::string path = "/*";
  for (size_t i = 0; i + 1 < pi.steps.size(); ++i) {
    path += "/" + ColStepXPath(pi.steps[i]);
  }
  if (pi.steps.empty()) return path;
  const ColStep& last = pi.steps.back();
  std::string elem_form = path + "/" + ColStepXPath(last);
  std::string attr_step = ColStepAttrXPath(last);
  if (attr_step.empty()) return elem_form;
  return elem_form + " | " + path + "/" + attr_step;
}

/// Relative XPath of a node extractor, applied to a bound variable.
/// A final `child` step with pos 0 may address what was an attribute in
/// the source document, so it expands to a union of the element and
/// attribute forms (attributes cannot appear mid-path: they have no
/// children, so only the last step needs the union).
std::string NodeXPath(const std::string& var, const NodeExtractor& phi) {
  std::string path = var;
  for (size_t i = 0; i < phi.steps.size(); ++i) {
    const NodeStep& st = phi.steps[i];
    bool last = i + 1 == phi.steps.size();
    if (st.op == NodeOp::kParent) {
      path += "/..";
    } else if (st.tag == "text") {
      path += "/text()[" + std::to_string(st.pos + 1) + "]";
    } else {
      std::string elem_form =
          path + "/" + st.tag + "[" + std::to_string(st.pos + 1) + "]";
      if (last && st.pos == 0) {
        path = "(" + elem_form + " | " + path + "/@" + st.tag + ")";
      } else {
        path = elem_form;
      }
    }
  }
  return path;
}

std::string CmpXPath(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "&lt;";
    case CmpOp::kLe:
      return "&lt;=";
    case CmpOp::kGt:
      return "&gt;";
    case CmpOp::kGe:
      return "&gt;=";
  }
  return "=";
}

std::string VarName(int col) { return "$c" + std::to_string(col); }

/// Renders an atomic predicate as an XPath boolean expression.
std::string AtomXPath(const Atom& a) {
  std::string lhs = NodeXPath(VarName(a.lhs_col), a.lhs_path);
  std::string rhs;
  bool identity = false;
  if (a.rhs_is_const) {
    auto num = mitra::ParseNumber(a.rhs_const);
    rhs = num ? a.rhs_const : "'" + a.rhs_const + "'";
  } else {
    rhs = NodeXPath(VarName(a.rhs_col), a.rhs_path);
    // Node-identity comparisons (internal nodes under `=`) require
    // generate-id() in XPath 1.0; value comparison is correct for leaves.
    // The generator emits the identity form whenever both sides are bare
    // paths (conservative: identity implies value equality for leaves too
    // in MITRA's documents, where leaf text uniquely belongs to its node).
    identity = (a.op == CmpOp::kEq);
  }
  if (identity && !a.rhs_is_const) {
    return "generate-id(" + lhs + ") = generate-id(" + rhs + ") or " + lhs +
           " = " + rhs;
  }
  return lhs + " " + CmpXPath(a.op) + " " + rhs;
}

/// Max column index referenced by an atom (binding level for hoisting).
int AtomMaxCol(const Atom& a) {
  return a.rhs_is_const ? a.lhs_col : std::max(a.lhs_col, a.rhs_col);
}

std::string LiteralXPath(const Literal& lit, const std::vector<Atom>& atoms) {
  std::string e = AtomXPath(atoms[lit.atom]);
  if (lit.negated) return "not(" + e + ")";
  return "(" + e + ")";
}

}  // namespace

std::string GenerateXslt(const Program& p) {
  std::string out;
  out +=
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<xsl:stylesheet version=\"1.0\"\n"
      "    xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">\n"
      "  <xsl:output method=\"xml\" indent=\"yes\"/>\n"
      "  <xsl:template match=\"/\">\n"
      "    <table>\n";

  const size_t k = p.columns.size();
  int indent = 6;
  auto line = [&](const std::string& s) {
    out += std::string(static_cast<size_t>(indent), ' ') + s + "\n";
  };

  // Single-clause formulas allow per-level hoisting (App. C); otherwise the
  // whole test is evaluated once all columns are bound. Close tags must
  // unwind in exact reverse opening order (an if opened between two
  // for-eachs closes between their end tags), so track them on a stack.
  bool hoistable = p.formula.clauses.size() == 1;

  std::vector<std::string> close_stack;
  for (size_t i = 0; i < k; ++i) {
    line("<xsl:for-each select=\"" + ColumnXPath(p.columns[i]) + "\">");
    indent += 2;
    close_stack.push_back("</xsl:for-each>");
    line("<xsl:variable name=\"c" + std::to_string(i) +
         "\" select=\".\"/>");
    if (hoistable) {
      // Emit every literal whose columns are all bound at this level.
      std::vector<std::string> tests;
      for (const Literal& lit : p.formula.clauses[0]) {
        if (AtomMaxCol(p.atoms[lit.atom]) == static_cast<int>(i)) {
          tests.push_back(LiteralXPath(lit, p.atoms));
        }
      }
      if (!tests.empty()) {
        line("<xsl:if test=\"" + JoinStrings(tests, " and ") + "\">");
        indent += 2;
        close_stack.push_back("</xsl:if>");
      }
    }
  }

  if (!hoistable && !p.formula.IsTrue()) {
    std::vector<std::string> clause_strs;
    for (const auto& clause : p.formula.clauses) {
      std::vector<std::string> lits;
      for (const Literal& lit : clause) {
        lits.push_back(LiteralXPath(lit, p.atoms));
      }
      clause_strs.push_back("(" + JoinStrings(lits, " and ") + ")");
    }
    line("<xsl:if test=\"" + JoinStrings(clause_strs, " or ") + "\">");
    indent += 2;
    close_stack.push_back("</xsl:if>");
  }

  line("<row>");
  indent += 2;
  for (size_t i = 0; i < k; ++i) {
    line("<col><xsl:value-of select=\"$c" + std::to_string(i) +
         "\"/></col>");
  }
  indent -= 2;
  line("</row>");

  while (!close_stack.empty()) {
    indent -= 2;
    line(close_stack.back());
    close_stack.pop_back();
  }

  out +=
      "    </table>\n"
      "  </xsl:template>\n"
      "</xsl:stylesheet>\n";
  return out;
}

int CountEffectiveLoc(const std::string& code) {
  int loc = 0;
  for (const std::string& raw : SplitString(code, '\n')) {
    std::string_view t = TrimWhitespace(raw);
    if (t.empty()) continue;
    // Boilerplate excluded from the Table 1 LOC metric.
    if (StartsWith(t, "<?xml")) continue;
    if (StartsWith(t, "<xsl:stylesheet") || StartsWith(t, "xmlns:xsl")) {
      continue;
    }
    if (StartsWith(t, "</xsl:stylesheet")) continue;
    if (StartsWith(t, "<xsl:output")) continue;
    ++loc;
  }
  return loc;
}

}  // namespace mitra::xml
