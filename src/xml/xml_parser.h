#ifndef MITRA_XML_XML_PARSER_H_
#define MITRA_XML_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/governor.h"
#include "common/status.h"
#include "hdt/hdt.h"

/// \file xml_parser.h
/// XML front-end plug-in (paper §3 "XML documents as HDTs", §6, Fig. 14).
///
/// Parses a self-contained XML document into an Hdt with the paper's
/// encoding:
///  - each element becomes a node tagged with the element name;
///  - each attribute becomes a nested *leaf child* tagged with the
///    attribute name, carrying the attribute value as data;
///  - if an element holds only character data (no attributes, no child
///    elements), that text is stored as the element node's own data, so
///    the node is a data-carrying leaf (this matches Fig. 4a, where
///    `<name>Alice</name>` is the single node `name = "Alice"`);
///  - otherwise every non-whitespace character-data run becomes a nested
///    leaf child tagged `text` (this matches Fig. 8, which addresses mixed
///    content via `pchildren(…, text, 0)`).
///
/// Supported syntax: prolog (`<?xml …?>`), processing instructions,
/// comments, CDATA sections, DOCTYPE (skipped), elements, attributes with
/// single- or double-quoted values, self-closing tags, and the predefined
/// character/numeric entities. Errors are reported with line:column.

namespace mitra::xml {

struct XmlParseOptions {
  /// Optional resource governor: the parser checks it once per element
  /// and charges bytes for every node it materializes, so a poisoned or
  /// pathological document surfaces kResourceExhausted instead of
  /// consuming unbounded memory/time.
  common::Governor* governor = nullptr;
};

/// Parses `input` into a hierarchical data tree.
Result<hdt::Hdt> ParseXml(std::string_view input);
Result<hdt::Hdt> ParseXml(std::string_view input,
                          const XmlParseOptions& opts);

/// Decodes XML character entities (&lt; &gt; &amp; &quot; &apos; and
/// numeric &#NN; / &#xNN;) in `s`. Unknown entities are an error.
Result<std::string> DecodeEntities(std::string_view s);

/// Escapes the five predefined characters for embedding into XML text.
std::string EscapeText(std::string_view s);
/// Escapes for embedding into a double-quoted attribute value.
std::string EscapeAttribute(std::string_view s);

}  // namespace mitra::xml

#endif  // MITRA_XML_XML_PARSER_H_
