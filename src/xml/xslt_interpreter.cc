#include "xml/xslt_interpreter.h"

#include <algorithm>
#include <map>
#include <string_view>
#include <vector>

#include "common/strings.h"
#include "xml/xml_parser.h"

namespace mitra::xml {

namespace {

// ---------------------------------------------------------------------------
// Mini-XPath evaluation
// ---------------------------------------------------------------------------

struct Value {
  enum class Kind { kNodeSet, kString, kBool };
  Kind kind = Kind::kBool;
  std::vector<hdt::NodeId> nodes;
  std::string str;
  bool boolean = false;

  static Value NodeSet(std::vector<hdt::NodeId> n) {
    Value v;
    v.kind = Kind::kNodeSet;
    std::sort(n.begin(), n.end());
    n.erase(std::unique(n.begin(), n.end()), n.end());
    v.nodes = std::move(n);
    return v;
  }
  static Value Str(std::string s) {
    Value v;
    v.kind = Kind::kString;
    v.str = std::move(s);
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.kind = Kind::kBool;
    v.boolean = b;
    return v;
  }
  bool Truthy() const {
    switch (kind) {
      case Kind::kNodeSet:
        return !nodes.empty();
      case Kind::kString:
        return !str.empty();
      case Kind::kBool:
        return boolean;
    }
    return false;
  }
};

using VarEnv = std::map<std::string, hdt::NodeId>;

class XPath {
 public:
  XPath(std::string_view expr, const hdt::Hdt& doc, const VarEnv& vars)
      : in_(expr), doc_(doc), vars_(vars) {}

  Result<Value> Evaluate() {
    MITRA_ASSIGN_OR_RETURN(Value v, ParseOr());
    SkipWs();
    if (!AtEnd()) return Err("trailing input in XPath expression");
    return v;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }
  bool ConsumeLit(std::string_view lit) {
    SkipWs();
    if (in_.substr(pos_).substr(0, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }
  /// Consumes a keyword only when followed by a non-name character.
  bool ConsumeWord(std::string_view word) {
    SkipWs();
    if (in_.substr(pos_).substr(0, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    if (after < in_.size() &&
        (std::isalnum(static_cast<unsigned char>(in_[after])) ||
         in_[after] == '-' || in_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }
  Status Err(std::string msg) const {
    return Status::InvalidArgument("XPath at offset " +
                                   std::to_string(pos_) + " of '" +
                                   std::string(in_) + "': " + std::move(msg));
  }

  Result<Value> ParseOr() {
    MITRA_ASSIGN_OR_RETURN(Value lhs, ParseAnd());
    while (ConsumeWord("or")) {
      MITRA_ASSIGN_OR_RETURN(Value rhs, ParseAnd());
      lhs = Value::Bool(lhs.Truthy() || rhs.Truthy());
    }
    return lhs;
  }

  Result<Value> ParseAnd() {
    MITRA_ASSIGN_OR_RETURN(Value lhs, ParseCmp());
    while (ConsumeWord("and")) {
      MITRA_ASSIGN_OR_RETURN(Value rhs, ParseCmp());
      lhs = Value::Bool(lhs.Truthy() && rhs.Truthy());
    }
    return lhs;
  }

  Result<Value> ParseCmp() {
    MITRA_ASSIGN_OR_RETURN(Value lhs, ParseUnion());
    SkipWs();
    const char* op = nullptr;
    for (const char* candidate : {"!=", "<=", ">=", "=", "<", ">"}) {
      if (ConsumeLit(candidate)) {
        op = candidate;
        break;
      }
    }
    if (op == nullptr) return lhs;
    MITRA_ASSIGN_OR_RETURN(Value rhs, ParseUnion());
    return Compare(lhs, std::string_view(op), rhs);
  }

  Result<Value> ParseUnion() {
    MITRA_ASSIGN_OR_RETURN(Value lhs, ParsePrimary());
    while (true) {
      SkipWs();
      if (!ConsumeLit("|")) return lhs;
      MITRA_ASSIGN_OR_RETURN(Value rhs, ParsePrimary());
      if (lhs.kind != Value::Kind::kNodeSet ||
          rhs.kind != Value::Kind::kNodeSet) {
        return Err("union of non-node-sets");
      }
      std::vector<hdt::NodeId> merged = lhs.nodes;
      merged.insert(merged.end(), rhs.nodes.begin(), rhs.nodes.end());
      lhs = Value::NodeSet(std::move(merged));
    }
  }

  Result<Value> ParsePrimary() {
    SkipWs();
    if (ConsumeLit("not(")) {
      MITRA_ASSIGN_OR_RETURN(Value inner, ParseOr());
      if (!ConsumeLit(")")) return Err("expected ')' after not(");
      return Value::Bool(!inner.Truthy());
    }
    if (ConsumeLit("generate-id(")) {
      MITRA_ASSIGN_OR_RETURN(Value inner, ParseOr());
      if (!ConsumeLit(")")) return Err("expected ')' after generate-id(");
      if (inner.kind != Value::Kind::kNodeSet) {
        return Err("generate-id over non-node-set");
      }
      // First node in document order (ids are preorder).
      if (inner.nodes.empty()) return Value::Str("");
      return Value::Str("id" + std::to_string(inner.nodes.front()));
    }
    if (!AtEnd() && in_[pos_] == '\'') {
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && in_[pos_] != '\'') ++pos_;
      if (AtEnd()) return Err("unterminated string literal");
      Value v = Value::Str(std::string(in_.substr(start, pos_ - start)));
      ++pos_;
      return v;
    }
    if (!AtEnd() && (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
                     in_[pos_] == '-')) {
      size_t start = pos_;
      if (in_[pos_] == '-') ++pos_;
      while (!AtEnd() &&
             (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
              in_[pos_] == '.')) {
        ++pos_;
      }
      return Value::Str(std::string(in_.substr(start, pos_ - start)));
    }
    if (ConsumeLit("(")) {
      MITRA_ASSIGN_OR_RETURN(Value inner, ParseOr());
      if (!ConsumeLit(")")) return Err("expected ')'");
      return inner;
    }
    return ParsePath();
  }

  Result<Value> ParsePath() {
    SkipWs();
    std::vector<hdt::NodeId> current;
    if (ConsumeLit("$")) {
      std::string name = ReadName();
      auto it = vars_.find(name);
      if (it == vars_.end()) return Err("unbound variable $" + name);
      current = {it->second};
    } else if (ConsumeLit("/*")) {
      current = {doc_.root()};
    } else if (ConsumeLit(".")) {
      // "." would need a context node; the generator never emits it in
      // tests (only in xsl:variable select, handled by the walker).
      return Err("bare '.' not supported in expressions");
    } else {
      return Err("expected a path");
    }
    while (true) {
      size_t before = pos_;
      if (!ConsumeLit("/")) break;
      auto step = ApplyStep(&current);
      if (!step.ok()) {
        pos_ = before;  // not a step (e.g. end of operand)
        break;
      }
    }
    return Value::NodeSet(std::move(current));
  }

  std::string ReadName() {
    size_t start = pos_;
    while (!AtEnd()) {
      char c = in_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
          c == '_' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<int> ReadIndexSuffix() {
    // Optional "[k]"; returns k or 0 when absent.
    if (!AtEnd() && in_[pos_] == '[') {
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && in_[pos_] != ']') ++pos_;
      if (AtEnd()) return Err("unterminated [index]");
      int k = std::stoi(std::string(in_.substr(start, pos_ - start)));
      ++pos_;
      return k;
    }
    return 0;
  }

  Status ApplyStep(std::vector<hdt::NodeId>* current) {
    std::vector<hdt::NodeId> next;
    if (ConsumeLit("..")) {
      for (hdt::NodeId n : *current) {
        hdt::NodeId p = doc_.Parent(n);
        if (p != hdt::kInvalidNode) next.push_back(p);
      }
      *current = std::move(next);
      return Status::OK();
    }
    if (ConsumeLit("@")) {
      std::string name = ReadName();
      if (name.empty()) return Err("expected attribute name after @");
      auto tag = doc_.LookupTag(name);
      if (tag) {
        for (hdt::NodeId n : *current) {
          // The attribute axis matches only attribute-encoded children.
          std::vector<hdt::NodeId> kids;
          doc_.ChildrenWithTag(n, *tag, &kids);
          for (hdt::NodeId k : kids) {
            if (doc_.IsAttribute(k)) next.push_back(k);
          }
        }
      }
      *current = std::move(next);
      return Status::OK();
    }
    if (ConsumeLit("descendant-or-self::*")) {
      for (hdt::NodeId n : *current) {
        if (!doc_.IsAttribute(n)) next.push_back(n);
        for (hdt::TagId t : doc_.AllTags()) {
          std::vector<hdt::NodeId> found;
          doc_.DescendantsWithTag(n, t, &found);
          for (hdt::NodeId d : found) {
            if (!doc_.IsAttribute(d)) next.push_back(d);
          }
        }
      }
      *current = std::move(next);
      return Status::OK();
    }
    if (ConsumeLit("descendant::")) {
      std::string name;
      if (ConsumeLit("text()")) {
        name = "text";
      } else {
        name = ReadName();
        if (name.empty()) return Err("expected name after descendant::");
      }
      auto tag = doc_.LookupTag(name);
      if (tag) {
        for (hdt::NodeId n : *current) {
          std::vector<hdt::NodeId> found;
          doc_.DescendantsWithTag(n, *tag, &found);
          for (hdt::NodeId d : found) {
            if (!doc_.IsAttribute(d)) next.push_back(d);
          }
        }
      }
      *current = std::move(next);
      return Status::OK();
    }
    std::string name;
    if (ConsumeLit("text()")) {
      name = "text";
    } else {
      name = ReadName();
      if (name.empty()) return Err("expected a step");
    }
    MITRA_ASSIGN_OR_RETURN(int k, ReadIndexSuffix());
    auto tag = doc_.LookupTag(name);
    if (tag) {
      for (hdt::NodeId n : *current) {
        // The child axis matches element children only. The positional
        // form indexes among element children with this tag.
        std::vector<hdt::NodeId> kids;
        doc_.ChildrenWithTag(n, *tag, &kids);
        int at = 0;
        for (hdt::NodeId c : kids) {
          if (doc_.IsAttribute(c)) continue;
          ++at;
          if (k > 0) {
            if (at == k) {
              next.push_back(c);
              break;
            }
          } else {
            next.push_back(c);
          }
        }
      }
    }
    *current = std::move(next);
    return Status::OK();
  }

  /// XPath 1.0 string-value: a node's own data, or the concatenation of
  /// its descendants' data in document order for internal nodes.
  std::string NodeString(hdt::NodeId n) const {
    if (doc_.HasData(n)) return std::string(doc_.Data(n));
    std::string out;
    const auto top = doc_.Children(n);
    std::vector<hdt::NodeId> stack(top.rbegin(), top.rend());
    while (!stack.empty()) {
      hdt::NodeId cur = stack.back();
      stack.pop_back();
      if (doc_.HasData(cur)) out += std::string(doc_.Data(cur));
      const auto ch = doc_.Children(cur);
      for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
    }
    return out;
  }

  Result<Value> Compare(const Value& lhs, std::string_view op,
                        const Value& rhs) {
    auto holds = [&](int cmp) {
      if (op == "=") return cmp == 0;
      if (op == "!=") return cmp != 0;
      if (op == "<") return cmp < 0;
      if (op == "<=") return cmp <= 0;
      if (op == ">") return cmp > 0;
      return cmp >= 0;  // ">="
    };
    auto strings_of = [&](const Value& v) {
      std::vector<std::string> out;
      if (v.kind == Value::Kind::kNodeSet) {
        for (hdt::NodeId n : v.nodes) out.push_back(NodeString(n));
      } else {
        out.push_back(v.str);
      }
      return out;
    };
    // Existential node-set semantics (XPath 1.0).
    for (const std::string& a : strings_of(lhs)) {
      for (const std::string& b : strings_of(rhs)) {
        if (holds(CompareData(a, b))) return Value::Bool(true);
      }
    }
    return Value::Bool(false);
  }

  std::string_view in_;
  size_t pos_ = 0;
  const hdt::Hdt& doc_;
  const VarEnv& vars_;
};

// ---------------------------------------------------------------------------
// Template walking
// ---------------------------------------------------------------------------

class Interpreter {
 public:
  Interpreter(const hdt::Hdt& sheet, const hdt::Hdt& doc)
      : sheet_(sheet), doc_(doc) {}

  Result<hdt::Table> Run() {
    hdt::NodeId tmpl = FindByTag(sheet_.root(), "xsl:template");
    if (tmpl == hdt::kInvalidNode) {
      return Status::InvalidArgument("stylesheet has no xsl:template");
    }
    VarEnv vars;
    MITRA_RETURN_IF_ERROR(Walk(tmpl, &vars));
    hdt::Table out;
    for (hdt::Row& r : rows_) {
      MITRA_RETURN_IF_ERROR(out.AppendRow(std::move(r)));
    }
    return out;
  }

 private:
  hdt::NodeId FindByTag(hdt::NodeId from, std::string_view tag) const {
    auto id = sheet_.LookupTag(tag);
    if (!id) return hdt::kInvalidNode;
    if (sheet_.node(from).tag == *id) return from;
    std::vector<hdt::NodeId> found;
    sheet_.DescendantsWithTag(from, *id, &found);
    return found.empty() ? hdt::kInvalidNode : found.front();
  }

  /// Reads an attribute of a stylesheet element (encoded as leaf child).
  std::string Attr(hdt::NodeId el, std::string_view name) const {
    auto id = sheet_.LookupTag(name);
    if (!id) return "";
    hdt::NodeId c = sheet_.ChildWithTagPos(el, *id, 0);
    return c == hdt::kInvalidNode ? "" : std::string(sheet_.Data(c));
  }

  Status Walk(hdt::NodeId el, VarEnv* vars) {
    for (hdt::NodeId child : sheet_.Children(el)) {
      const std::string& tag = sheet_.NodeTagName(child);
      if (tag == "xsl:for-each") {
        std::string select = Attr(child, "select");
        MITRA_ASSIGN_OR_RETURN(Value v,
                               XPath(select, doc_, *vars).Evaluate());
        if (v.kind != Value::Kind::kNodeSet) {
          return Status::InvalidArgument("for-each select is not a node set");
        }
        for (hdt::NodeId n : v.nodes) {
          context_ = n;
          MITRA_RETURN_IF_ERROR(Walk(child, vars));
        }
      } else if (tag == "xsl:variable") {
        std::string name = Attr(child, "name");
        std::string select = Attr(child, "select");
        if (select != ".") {
          return Status::InvalidArgument(
              "only select=\".\" variables are generated");
        }
        (*vars)[name] = context_;
      } else if (tag == "xsl:if") {
        std::string test = Attr(child, "test");
        MITRA_ASSIGN_OR_RETURN(Value v, XPath(test, doc_, *vars).Evaluate());
        if (v.Truthy()) {
          MITRA_RETURN_IF_ERROR(Walk(child, vars));
        }
      } else if (tag == "row") {
        hdt::Row row;
        for (hdt::NodeId col : sheet_.Children(child)) {
          if (sheet_.NodeTagName(col) != "col") continue;
          hdt::NodeId vo = FindByTag(col, "xsl:value-of");
          if (vo == hdt::kInvalidNode) {
            return Status::InvalidArgument("col without xsl:value-of");
          }
          std::string select = Attr(vo, "select");
          MITRA_ASSIGN_OR_RETURN(Value v,
                                 XPath(select, doc_, *vars).Evaluate());
          if (v.kind == Value::Kind::kNodeSet) {
            row.push_back(v.nodes.empty()
                              ? std::string()
                              : std::string(doc_.Data(v.nodes.front())));
          } else {
            row.push_back(v.str);
          }
        }
        rows_.push_back(std::move(row));
      } else if (tag == "table" || tag == "select" || tag == "name" ||
                 tag == "test" || tag == "match") {
        // `table` wrapper: recurse; attribute-encoded leaves: skip.
        if (tag == "table") {
          MITRA_RETURN_IF_ERROR(Walk(child, vars));
        }
      } else {
        // Unknown literal element: recurse conservatively.
        MITRA_RETURN_IF_ERROR(Walk(child, vars));
      }
    }
    return Status::OK();
  }

  const hdt::Hdt& sheet_;
  const hdt::Hdt& doc_;
  hdt::NodeId context_ = hdt::kInvalidNode;
  std::vector<hdt::Row> rows_;
};

}  // namespace

Result<hdt::Table> RunXslt(const std::string& stylesheet,
                           const hdt::Hdt& doc) {
  MITRA_ASSIGN_OR_RETURN(hdt::Hdt sheet, ParseXml(stylesheet));
  return Interpreter(sheet, doc).Run();
}

}  // namespace mitra::xml
