#include "xml/xml_writer.h"

#include "xml/xml_parser.h"

namespace mitra::xml {

namespace {

Status WriteNode(const hdt::Hdt& t, hdt::NodeId id, const WriteOptions& opts,
                 int depth, std::string* out) {
  if (depth > kMaxWriteDepth) {
    return Status::InvalidArgument("tree nesting too deep to serialize (>" +
                                   std::to_string(kMaxWriteDepth) + ")");
  }
  auto indent = [&]() {
    if (opts.pretty) out->append(static_cast<size_t>(depth) * 2, ' ');
  };
  auto newline = [&]() {
    if (opts.pretty) out->push_back('\n');
  };

  const hdt::Node& n = t.node(id);
  const std::string& tag = t.NodeTagName(id);

  // Only provenance-marked text runs render as character data; an element
  // that merely happens to be *named* `text` renders as a normal element
  // (otherwise `<text>x</text>` would collapse into its parent's data on
  // re-parse — a round-trip asymmetry the doc fuzzer surfaced).
  if (n.is_text_run && n.has_data) {
    indent();
    out->append(EscapeText(n.data));
    newline();
    return Status();
  }

  indent();
  out->push_back('<');
  out->append(tag);
  // Attribute-encoded children render as real attributes.
  size_t non_attr_children = 0;
  const std::span<const hdt::NodeId> children = t.Children(id);
  for (hdt::NodeId c : children) {
    if (t.IsAttribute(c)) {
      out->push_back(' ');
      out->append(t.NodeTagName(c));
      out->append("=\"");
      out->append(EscapeAttribute(std::string(t.Data(c))));
      out->push_back('"');
    } else {
      ++non_attr_children;
    }
  }
  if (non_attr_children == 0 && !children.empty()) {
    if (n.has_data) {
      out->push_back('>');
      out->append(EscapeText(n.data));
      out->append("</");
      out->append(tag);
      out->push_back('>');
    } else {
      out->append("/>");
    }
    newline();
    return Status();
  }
  if (children.empty()) {
    if (n.has_data) {
      out->push_back('>');
      out->append(EscapeText(n.data));
      out->append("</");
      out->append(tag);
      out->push_back('>');
    } else {
      out->append("/>");
    }
    newline();
    return Status();
  }
  out->push_back('>');
  newline();
  for (hdt::NodeId c : children) {
    if (!t.IsAttribute(c)) {
      MITRA_RETURN_IF_ERROR(WriteNode(t, c, opts, depth + 1, out));
    }
  }
  indent();
  out->append("</");
  out->append(tag);
  out->push_back('>');
  newline();
  return Status();
}

}  // namespace

Result<std::string> WriteXml(const hdt::Hdt& tree, const WriteOptions& opts) {
  std::string out;
  if (opts.prolog) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (opts.pretty) out += "\n";
  }
  if (!tree.empty()) {
    MITRA_RETURN_IF_ERROR(WriteNode(tree, tree.root(), opts, 0, &out));
  }
  return out;
}

}  // namespace mitra::xml
