#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace mitra::obs {
namespace {

/// Per-thread span nesting depth (for the `depth` field of TraceEvent).
thread_local std::uint32_t tls_span_depth = 0;

void AppendEscaped(std::string* out, const char* s) {
  for (; *s; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

}  // namespace

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Tracer() : epoch_ns_(NowNs()) {}

Tracer& Tracer::Global() {
  static Tracer* t = new Tracer;  // never destroyed: thread-local ring
  return *t;                      // pointers may outlive main()
}

Tracer::Ring* Tracer::ThisThreadRing() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(std::make_unique<Ring>(
        capacity_, static_cast<std::uint32_t>(rings_.size())));
    ring = rings_.back().get();
  }
  return ring;
}

void Tracer::Record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, std::uint32_t depth) {
  Ring* r = ThisThreadRing();
  std::uint64_t h = r->head.load(std::memory_order_relaxed);
  r->slots[h % r->slots.size()] = TraceEvent{name, start_ns, dur_ns, r->tid,
                                             depth};
  r->head.store(h + 1, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  for (const auto& r : rings_) {
    std::uint64_t h = r->head.load(std::memory_order_acquire);
    std::uint64_t cap = r->slots.size();
    std::uint64_t n = h < cap ? h : cap;
    // Oldest retained event is at index h - n; read forward from there.
    for (std::uint64_t i = h - n; i < h; ++i) {
      events.push_back(r->slots[i % cap]);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return events;
}

std::uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& r : rings_) {
    std::uint64_t h = r->head.load(std::memory_order_acquire);
    std::uint64_t cap = r->slots.size();
    if (h > cap) dropped += h - cap;
  }
  return dropped;
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<TraceEvent> events = Collect();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    AppendEscaped(&out, e.name);
    out += "\",\"cat\":\"mitra\",\"ph\":\"X\",\"ts\":";
    // Microseconds with ns precision, relative to the tracer epoch.
    double ts_us =
        static_cast<double>(e.start_ns - epoch_ns_) / 1000.0;
    std::snprintf(buf, sizeof(buf), "%.3f", ts_us);
    out += buf;
    out += ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.dur_ns) / 1000.0);
    out += buf;
    out += ",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu32, e.tid);
    out += buf;
    out += ",\"args\":{\"depth\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu32, e.depth);
    out += buf;
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"dropped_events\":";
  std::snprintf(buf, sizeof(buf), "%" PRIu64, dropped_events());
  out += buf;
  out += "}\n";
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& r : rings_) r->head.store(0, std::memory_order_release);
}

void Tracer::SetRingCapacityForTest(std::size_t cap) {
  if (cap == 0) cap = 1;
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = cap;
  for (auto& r : rings_) {
    r->slots.assign(cap, TraceEvent{});
    r->head.store(0, std::memory_order_release);
  }
}

std::size_t Tracer::ring_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void Span::Begin(const char* name) {
  name_ = name;
  depth_ = tls_span_depth++;
  start_ns_ = NowNs();
}

void Span::End() {
  std::uint64_t end_ns = NowNs();
  --tls_span_depth;
  Tracer::Global().Record(name_, start_ns_, end_ns - start_ns_, depth_);
}

}  // namespace mitra::obs
