#ifndef MITRA_OBS_TRACE_H_
#define MITRA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// \file trace.h
/// Structured tracing (ISSUE 7): RAII spans recorded into lock-free
/// per-thread ring buffers, exported as Chrome `trace_event` JSON
/// (load the file in chrome://tracing or https://ui.perfetto.dev).
///
/// Recording is disabled by default; `Tracer::Global().SetEnabled(true)`
/// turns it on (mitra_cli does this for `--trace=FILE`). A disabled Span
/// costs one relaxed atomic load and writes nothing. An enabled Span costs
/// two steady_clock reads plus one ring-buffer slot write — no allocation,
/// no locks, so spans are safe inside the synthesizer's parallel waves.
///
/// Each thread owns a fixed-capacity ring; when it fills, the newest event
/// overwrites the oldest (drops-oldest), and the exporter reports how many
/// were lost via `dropped_events`. Collection (`Collect` / `ChromeTraceJson`)
/// is intended for quiescent moments — after a synthesis run, not during.

namespace mitra::obs {

/// Monotonic nanoseconds (steady clock).
std::uint64_t NowNs();

/// One completed span. `name` must be a string with static storage duration
/// (the MITRA_SPAN macro passes literals), so recording never copies.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;    ///< dense per-thread id (registration order)
  std::uint32_t depth = 0;  ///< span nesting depth on its thread (root = 0)
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1 << 14;

  static Tracer& Global();

  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a completed span on the calling thread's ring. Prefer the
  /// Span RAII type / MITRA_SPAN macro over calling this directly.
  void Record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint32_t depth);

  /// All retained events across threads, oldest-first by start time.
  /// Call only while no spans are being recorded.
  std::vector<TraceEvent> Collect() const;

  /// Events lost to ring overflow since the last Clear().
  std::uint64_t dropped_events() const;

  /// Chrome trace_event JSON: {"traceEvents":[...], "displayTimeUnit":"ms",
  /// "dropped_events": N}. Timestamps are microseconds relative to the
  /// tracer's epoch (first use).
  std::string ChromeTraceJson() const;

  /// Drops all retained events (rings stay registered; cached thread-local
  /// pointers remain valid).
  void Clear();

  /// Shrinks/grows every ring (existing and future) to `cap` slots,
  /// discarding retained events. Test-only: callers must be quiescent.
  void SetRingCapacityForTest(std::size_t cap);
  std::size_t ring_capacity() const;

  /// Epoch all exported timestamps are relative to.
  std::uint64_t epoch_ns() const { return epoch_ns_; }

 private:
  struct Ring {
    explicit Ring(std::size_t cap, std::uint32_t id)
        : slots(cap), tid(id) {}
    std::vector<TraceEvent> slots;
    /// Monotonic count of events ever written; slot index = head % size.
    std::atomic<std::uint64_t> head{0};
    std::uint32_t tid;
  };

  Tracer();
  Ring* ThisThreadRing();

  std::atomic<bool> enabled_{false};
  std::uint64_t epoch_ns_;
  mutable std::mutex mu_;  ///< guards rings_ registration and capacity_
  std::vector<std::unique_ptr<Ring>> rings_;
  std::size_t capacity_ = kDefaultRingCapacity;
};

/// RAII span: records [construction, destruction) on the global tracer.
/// When tracing is disabled at construction the span is inert.
class Span {
 public:
  explicit Span(const char* name) {
    if (Tracer::Global().enabled()) Begin(name);
  }
  ~Span() {
    if (start_ns_ != 0) End();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;  ///< 0 = inert (tracing was off)
  std::uint32_t depth_ = 0;
};

}  // namespace mitra::obs

#endif  // MITRA_OBS_TRACE_H_
