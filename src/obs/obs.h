#ifndef MITRA_OBS_OBS_H_
#define MITRA_OBS_OBS_H_

#include "obs/metrics.h"
#include "obs/trace.h"

/// \file obs.h
/// Instrumentation macros (ISSUE 7). All call sites across the codebase go
/// through these; they compile to *nothing* when `MITRA_OBS=0` (CMake:
/// `-DMITRA_OBS=OFF`), so a no-op build carries zero instrumentation cost
/// and registers zero metrics. Only the macros are gated — the obs classes
/// themselves are identical under both settings, keeping mixed builds (a
/// no-op test target inside an instrumented build tree) ODR-clean.
///
/// Naming scheme: `layer/phase/name`, e.g.
///   synth/phase2/candidates_enumerated
///   dfa/construct/states
///   memo/extractor/hits
///   gov/check/<site>
/// See DESIGN.md "Observability" for the full catalogue and the rules for
/// adding new metrics.
///
/// Hot-loop guidance: `MITRA_COUNT` is one relaxed add on a cached pointer
/// (~1-2 ns), but inner loops that run millions of times should accumulate
/// into a local and flush once per call (see executor.cc).

#ifndef MITRA_OBS
#define MITRA_OBS 1
#endif

#if MITRA_OBS

/// Adds `n` to the counter `name` (a string literal). The registry lookup
/// happens once per call site via a function-local static.
#define MITRA_COUNT(name, n)                                       \
  do {                                                             \
    static ::mitra::obs::Counter* const mitra_obs_counter_ =       \
        ::mitra::obs::GetCounter(name);                            \
    mitra_obs_counter_->Add(static_cast<std::uint64_t>(n));        \
  } while (0)

/// Sets the gauge `name` (tracks last value and high-watermark).
#define MITRA_GAUGE_SET(name, v)                                   \
  do {                                                             \
    static ::mitra::obs::Gauge* const mitra_obs_gauge_ =           \
        ::mitra::obs::GetGauge(name);                              \
    mitra_obs_gauge_->Set(static_cast<std::uint64_t>(v));          \
  } while (0)

/// Observes `v` in the histogram `name`.
#define MITRA_HISTOGRAM(name, v)                                   \
  do {                                                             \
    static ::mitra::obs::Histogram* const mitra_obs_hist_ =        \
        ::mitra::obs::GetHistogram(name);                          \
    mitra_obs_hist_->Observe(static_cast<std::uint64_t>(v));       \
  } while (0)

/// Opens an RAII span named `name` (literal) covering the rest of the
/// enclosing scope. `var` is the local variable name for the span object.
#define MITRA_SPAN(var, name) ::mitra::obs::Span var(name)

/// Declares a file-scope SiteCounterCache for `const char*` site keys.
#define MITRA_SITE_COUNTERS(var, prefix) \
  ::mitra::obs::SiteCounterCache var(prefix)

/// Adds to a MITRA_SITE_COUNTERS cache.
#define MITRA_SITE_COUNT(var, site, n) (var).Add((site), (n))

#else  // MITRA_OBS == 0: every instrumentation site compiles away.

#define MITRA_COUNT(name, n) \
  do {                       \
  } while (0)
#define MITRA_GAUGE_SET(name, v) \
  do {                           \
  } while (0)
#define MITRA_HISTOGRAM(name, v) \
  do {                           \
  } while (0)
#define MITRA_SPAN(var, name) \
  do {                        \
  } while (0)
#define MITRA_SITE_COUNTERS(var, prefix) \
  static_assert(true, "")
#define MITRA_SITE_COUNT(var, site, n) \
  do {                                 \
  } while (0)

#endif  // MITRA_OBS

#endif  // MITRA_OBS_OBS_H_
