#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace mitra::obs {
namespace {

/// Escapes a metric name for use as a JSON string. Names are ASCII slugs in
/// practice, but the exporter must never emit invalid JSON for any input.
void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

int Counter::ThisThreadShard() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local int shard =
      static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<unsigned>(kCounterShards));
  return shard;
}

Registry& Registry::Global() {
  static Registry* r = new Registry;  // never destroyed: metric pointers are
  return *r;                          // cached in function-local statics
}

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

const Counter* Registry::FindCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap[name] = c->Value();
  for (const auto& [name, g] : gauges_) {
    snap[name + "/last"] = g->last();
    snap[name + "/max"] = g->max();
  }
  for (const auto& [name, h] : histograms_) {
    snap[name + "/count"] = h->count();
    snap[name + "/sum"] = h->sum();
  }
  return snap;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

Counter* GetCounter(std::string_view name) {
  return Registry::Global().GetCounter(name);
}
Gauge* GetGauge(std::string_view name) {
  return Registry::Global().GetGauge(name);
}
Histogram* GetHistogram(std::string_view name) {
  return Registry::Global().GetHistogram(name);
}
MetricsSnapshot SnapshotMetrics() { return Registry::Global().Snapshot(); }
void ResetAllMetrics() { Registry::Global().Reset(); }

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before) {
  MetricsSnapshot now = SnapshotMetrics();
  MetricsSnapshot delta;
  for (const auto& [name, value] : now) {
    auto it = before.find(name);
    std::uint64_t base = it == before.end() ? 0 : it->second;
    if (value > base) delta[name] = value - base;
  }
  return delta;
}

std::string MetricsJson(const MetricsSnapshot& snapshot, bool indent) {
  std::string out = "{";
  const char* sep = indent ? "\n  " : "";
  bool first = true;
  for (const auto& [name, value] : snapshot) {
    if (!first) out += ',';
    first = false;
    out += sep;
    out += '"';
    AppendJsonEscaped(&out, name);
    out += "\": ";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += buf;
  }
  if (indent && !first) out += '\n';
  out += '}';
  if (indent) out += '\n';
  return out;
}

std::string MetricsJson() { return MetricsJson(SnapshotMetrics()); }

void SiteCounterCache::Add(const char* site, std::uint64_t n) noexcept {
  // Pointer-hash probe: literals are 16-byte-ish aligned, drop low bits.
  std::size_t h =
      (reinterpret_cast<std::uintptr_t>(site) >> 4) & (kSlots - 1);
  for (int probe = 0; probe < 8; ++probe) {
    std::atomic<Entry*>& slot = slots_[(h + probe) & (kSlots - 1)];
    Entry* e = slot.load(std::memory_order_acquire);
    if (e != nullptr) {
      if (e->key == site) {
        e->counter->Add(n);
        return;
      }
      continue;  // different site hashed here; keep probing
    }
    // Empty slot: build the entry fully, then publish with a CAS. Entries
    // are immutable after publication and intentionally leaked (the cache
    // lives for the whole process).
    Entry* ne = new Entry{site, GetCounter(std::string(prefix_) + site)};
    Entry* expected = nullptr;
    if (slot.compare_exchange_strong(expected, ne, std::memory_order_release,
                                     std::memory_order_acquire)) {
      ne->counter->Add(n);
      return;
    }
    delete ne;
    if (expected->key == site) {
      expected->counter->Add(n);
      return;
    }
  }
  // Cache full around this hash: fall back to the (mutex-guarded) registry.
  GetCounter(std::string(prefix_) + site)->Add(n);
}

}  // namespace mitra::obs
