#ifndef MITRA_OBS_METRICS_H_
#define MITRA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// \file metrics.h
/// Process-global metrics registry (ISSUE 7): cheap thread-safe counters,
/// gauges, and histograms, addressed by slash-separated names following the
/// `layer/phase/name` scheme (e.g. "synth/phase2/candidates_enumerated").
///
/// Design goals, in priority order:
///  1. Hot-path cost: `Counter::Add` is one relaxed fetch_add on a
///     cache-line-padded shard chosen per thread — no locks, no hashing.
///     Callers cache the `Counter*` (the `MITRA_COUNT` macro does this with
///     a function-local static), so name lookup happens once per call site.
///  2. Zero dependencies: this library uses only the C++ standard library so
///     every layer (common included) can link it.
///  3. Exactness: `Counter::Value` sums all shards; concurrent adds are never
///     lost (verified under 8-thread contention in obs_test).
///
/// Instrumentation call sites should go through the macros in obs.h, which
/// compile to nothing when `MITRA_OBS=0`; the classes below are identical
/// under both settings so mixed builds stay ODR-clean.

namespace mitra::obs {

/// Number of independent shards per counter. Threads are assigned shards
/// round-robin at first use; 16 padded shards keep an 8-way contended add
/// mostly uncontended while costing 1 KiB per counter.
inline constexpr int kCounterShards = 16;

/// Monotonic counter. Add is wait-free; Value/Reset are O(shards).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Adds `n` to this thread's shard (relaxed; no ordering implied).
  void Add(std::uint64_t n = 1) noexcept {
    shards_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards. Exact once writers have quiesced; a lower bound
  /// while they are still running.
  std::uint64_t Value() const noexcept {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  /// Zeroes every shard (test/reset support; not linearizable vs. Add).
  void Reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };

  static int ThisThreadShard() noexcept;

  Shard shards_[kCounterShards];
};

/// Last-value + high-watermark gauge (e.g. queue depth, universe size).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::uint64_t v) noexcept {
    last_.store(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < v &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t last() const noexcept {
    return last_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept {
    last_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> last_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Log2-bucketed histogram for durations/sizes. Observe is wait-free.
class Histogram {
 public:
  /// Number of buckets: bucket b counts values v with floor(log2(v)) == b
  /// (bucket 0 also takes v == 0).
  static constexpr int kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(std::uint64_t v) noexcept {
    int b = v == 0 ? 0 : 63 - CountLeadingZeros(v);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t BucketCount(int b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void Reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  static int CountLeadingZeros(std::uint64_t v) noexcept {
    return __builtin_clzll(v);
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Flat name → value snapshot of every registered metric. Counters appear
/// under their name; gauges add `<name>/last` and `<name>/max`; histograms
/// add `<name>/count` and `<name>/sum`.
using MetricsSnapshot = std::map<std::string, std::uint64_t>;

/// Name → metric registry. Get* registers on first use and returns a stable
/// pointer (metrics are never removed, so cached pointers stay valid for the
/// process lifetime — `ResetAllMetrics` zeroes values, not registrations).
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Lookup without registering; nullptr when the name was never created.
  /// (The MITRA_OBS=0 no-op test uses this to prove instrumentation is
  /// compiled out.)
  const Counter* FindCounter(std::string_view name) const;

  MetricsSnapshot Snapshot() const;
  /// Zeroes every metric value, keeping registrations (and therefore every
  /// cached pointer) intact.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Convenience wrappers over Registry::Global().
Counter* GetCounter(std::string_view name);
Gauge* GetGauge(std::string_view name);
Histogram* GetHistogram(std::string_view name);
MetricsSnapshot SnapshotMetrics();
void ResetAllMetrics();

/// Snapshot minus an earlier snapshot: per-key max(0, now - before), keys
/// absent from `before` kept as-is, zero-delta keys dropped. Used to report
/// per-run metrics from the process-global registry.
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before);

/// Flat JSON object `{"name": value, ...}` with escaped keys, sorted by
/// name. `indent` pretty-prints with 2-space indentation.
std::string MetricsJson(const MetricsSnapshot& snapshot, bool indent = true);
/// MetricsJson over the current global snapshot.
std::string MetricsJson();

/// Fast per-site counter cache for call sites whose name arrives as a
/// `const char*` literal chosen at runtime (the governor's check sites).
/// Keys on pointer identity — distinct literals with equal contents simply
/// resolve to the same registry counter — so the hot path is one hash of
/// the pointer plus a relaxed add, with no string handling.
class SiteCounterCache {
 public:
  /// `prefix` is prepended to the site name on first registration, e.g.
  /// SiteCounterCache("gov/check/") maps site "dfa/construct" to the
  /// counter "gov/check/dfa/construct".
  explicit SiteCounterCache(const char* prefix) : prefix_(prefix) {}

  void Add(const char* site, std::uint64_t n = 1) noexcept;

 private:
  struct Entry {
    const char* key;
    Counter* counter;
  };
  static constexpr int kSlots = 256;  // power of two

  std::atomic<Entry*> slots_[kSlots] = {};
  const char* prefix_;
};

}  // namespace mitra::obs

#endif  // MITRA_OBS_METRICS_H_
