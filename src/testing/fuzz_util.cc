#include "testing/fuzz_util.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "dsl/ast.h"
#include "dsl/parser.h"
#include "json/json_parser.h"
#include "json/json_writer.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace mitra::testing {

namespace {

[[noreturn]] void Violation(const char* what, std::string_view input,
                            const std::string& detail) {
  std::fprintf(stderr,
               "fuzz property violation: %s\n--- input (%zu bytes) ---\n%.*s"
               "\n--- detail ---\n%s\n",
               what, input.size(), static_cast<int>(input.size()),
               input.data(), detail.c_str());
  std::abort();
}

void CheckXml(std::string_view text) {
  auto tree = xml::ParseXml(text);
  if (!tree.ok()) return;  // rejecting with a Status is fine
  // Parsed documents must reach write normal form in one step:
  // write → parse → write must reproduce the first writer output.
  auto s1r = xml::WriteXml(*tree);
  if (!s1r.ok()) return;  // too deep to serialize — nothing to round-trip
  std::string s1 = std::move(*s1r);
  auto t2 = xml::ParseXml(s1);
  if (!t2.ok()) {
    Violation("XML writer output does not re-parse", text,
              s1 + "\n" + t2.status().ToString());
  }
  std::string s2 = *xml::WriteXml(*t2);
  if (s2 != s1) {
    Violation("XML write not idempotent", text,
              "first:\n" + s1 + "\nsecond:\n" + s2);
  }
  if (t2->ToDebugString() != tree->ToDebugString()) {
    Violation("XML round-trip changed the tree", text,
              "original:\n" + tree->ToDebugString() + "reparsed:\n" +
                  t2->ToDebugString());
  }
}

void CheckJson(std::string_view text) {
  auto tree = json::ParseJson(text);
  if (!tree.ok()) return;
  auto s1r = json::WriteJson(*tree);
  if (!s1r.ok()) return;  // too deep to serialize — nothing to round-trip
  std::string s1 = std::move(*s1r);
  auto t2 = json::ParseJson(s1);
  if (!t2.ok()) {
    Violation("JSON writer output does not re-parse", text,
              s1 + "\n" + t2.status().ToString());
  }
  std::string s2 = *json::WriteJson(*t2);
  if (s2 != s1) {
    Violation("JSON write not idempotent", text,
              "first:\n" + s1 + "\nsecond:\n" + s2);
  }
}

void CheckDsl(std::string_view text) {
  auto p = dsl::ParseProgram(text);
  if (!p.ok()) return;
  std::string s1 = dsl::ToString(*p);
  auto p2 = dsl::ParseProgram(s1);
  if (!p2.ok()) {
    Violation("DSL printer output does not re-parse", text,
              s1 + "\n" + p2.status().ToString());
  }
  if (p2->columns != p->columns || p2->atoms != p->atoms ||
      !(p2->formula == p->formula)) {
    Violation("DSL print/parse round-trip changed the program", text,
              "printed: " + s1 + "\nreprinted: " + dsl::ToString(*p2));
  }
}

/// Tokens worth splicing in whole — cheap grammar awareness that lets the
/// dumb mutator reach interesting parser states.
const char* const kDictionary[] = {
    "<a>",        "</a>",     "<a b=\"c\">", "<?xml?>",  "<!--x-->",
    "<![CDATA[",  "]]>",      "&#x41;",      "&#65;",    "&amp;",
    "{",          "}",        "[",           "]",        "\"k\":",
    "\\u0041",    "\\uD83D",  "\\uDE00",     "null",     "1e9",
    "filter(",    "children", "pchildren",   "descendants",
    "\\lambda",   "t[0]",     "&&",          "||",       "!",
    "\xce\xbb",   "\xcf\x84", "x",           "root(",    "(\\lambda s.",
};

}  // namespace

int RunFuzzInput(FuzzTarget target, const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  // Bound pathological inputs: deep recursion is a real risk at multi-MB
  // sizes, and corpus/CI runs gain nothing beyond this.
  if (text.size() > 1 << 20) return 0;
  switch (target) {
    case FuzzTarget::kXml:
      CheckXml(text);
      break;
    case FuzzTarget::kJson:
      CheckJson(text);
      break;
    case FuzzTarget::kDsl:
      CheckDsl(text);
      break;
  }
  return 0;
}

void MutateBytes(Rng* rng, std::string* buf) {
  switch (rng->Below(6)) {
    case 0: {  // bit flip
      if (buf->empty()) break;
      size_t i = rng->Below(static_cast<uint32_t>(buf->size()));
      (*buf)[i] = static_cast<char>((*buf)[i] ^ (1 << rng->Below(8)));
      break;
    }
    case 1: {  // overwrite with random byte
      if (buf->empty()) break;
      size_t i = rng->Below(static_cast<uint32_t>(buf->size()));
      (*buf)[i] = static_cast<char>(rng->Below(256));
      break;
    }
    case 2: {  // insert random byte
      size_t i = rng->Below(static_cast<uint32_t>(buf->size() + 1));
      buf->insert(buf->begin() + static_cast<long>(i),
                  static_cast<char>(rng->Below(256)));
      break;
    }
    case 3: {  // erase a short range
      if (buf->empty()) break;
      size_t i = rng->Below(static_cast<uint32_t>(buf->size()));
      size_t len = 1 + rng->Below(8);
      buf->erase(i, len);
      break;
    }
    case 4: {  // duplicate a short range
      if (buf->empty()) break;
      size_t i = rng->Below(static_cast<uint32_t>(buf->size()));
      size_t len = 1 + rng->Below(16);
      std::string chunk = buf->substr(i, len);
      size_t j = rng->Below(static_cast<uint32_t>(buf->size() + 1));
      buf->insert(j, chunk);
      break;
    }
    case 5: {  // splice a dictionary token
      const char* tok =
          kDictionary[rng->Below(sizeof(kDictionary) / sizeof(char*))];
      size_t i = rng->Below(static_cast<uint32_t>(buf->size() + 1));
      buf->insert(i, tok);
      break;
    }
  }
}

}  // namespace mitra::testing
