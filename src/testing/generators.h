#ifndef MITRA_TESTING_GENERATORS_H_
#define MITRA_TESTING_GENERATORS_H_

#include <cstdint>
#include <string>

#include "dsl/ast.h"
#include "hdt/hdt.h"
#include "testing/rng.h"

/// \file generators.h
/// Seeded random generators for the differential / property harnesses:
/// hierarchical documents (XML- and JSON-shaped HDTs) and random
/// well-typed DSL programs over a given document. Everything is a pure
/// function of the Rng stream, so a printed seed replays the exact case.
///
/// Document generators respect the *encoding invariants* of the matching
/// parser (the "parser image"), because that is the domain on which the
/// writers promise exact round-trips:
///  - XML shape: data leaves are never empty or whitespace-edged (the
///    parser trims character data); text runs appear only as
///    mixed-content children; attribute names are unique per element.
///  - JSON shape: no attributes or text runs; same-tag children are
///    consecutive (the writer groups same-key siblings into one array).

namespace mitra::testing {

struct DocGenOptions {
  /// Approximate number of nodes (including the root).
  int max_nodes = 30;
  /// Generate XML-shaped trees (attributes + mixed-content text runs);
  /// false generates JSON-shaped trees.
  bool xml_shape = true;
  /// Draw data values from the tricky pool (entity-lookalikes, quotes,
  /// angle brackets, escapes, unicode, number-lookalike strings) in
  /// addition to plain identifiers and small numbers.
  bool tricky_data = true;
};

/// Generates a random document with the invariants above.
hdt::Hdt GenerateDocument(Rng* rng, const DocGenOptions& opts = {});

/// Returns a structurally grown copy of `tree`: `extra_subtrees` fresh
/// random subtrees are appended under the root (with the same shape
/// conventions), so programs synthesized on `tree` can be re-checked on a
/// strictly larger document (the generalization half of Theorem 3).
hdt::Hdt EnlargeDocument(Rng* rng, const hdt::Hdt& tree, int extra_subtrees,
                         const DocGenOptions& opts = {});

struct ProgGenOptions {
  int max_columns = 3;
  int max_col_steps = 3;
  int max_atoms = 3;
  int max_node_steps = 2;
  /// Cap on |π1(τ)| × … × |πk(τ)|; columns are re-drawn while the running
  /// product would exceed this, keeping naive evaluation cheap.
  uint64_t max_cross_product = 20'000;
};

/// Generates a random well-typed program over `tree`: every column
/// extractor uses tags present in the document, atoms reference valid
/// tuple indices, and the DNF formula only uses generated atoms.
dsl::Program GenerateProgram(Rng* rng, const hdt::Hdt& tree,
                             const ProgGenOptions& opts = {});

}  // namespace mitra::testing

#endif  // MITRA_TESTING_GENERATORS_H_
