#include "testing/oracles.h"

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"
#include "core/executor.h"
#include "core/synthesizer.h"
#include "dsl/eval.h"
#include "dsl/parser.h"
#include "dsl/reference_eval.h"
#include "hdt/table.h"
#include "json/json_parser.h"
#include "json/json_writer.h"
#include "testing/generators.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace mitra::testing {

namespace {

std::string DumpTuples(const std::vector<dsl::NodeTuple>& tuples,
                       size_t limit = 12) {
  std::string out;
  for (size_t i = 0; i < tuples.size() && i < limit; ++i) {
    out += "  (";
    for (size_t j = 0; j < tuples[i].size(); ++j) {
      if (j) out += ",";
      out += std::to_string(tuples[i][j]);
    }
    out += ")\n";
  }
  if (tuples.size() > limit) {
    out += "  … " + std::to_string(tuples.size() - limit) + " more\n";
  }
  return out;
}

std::string CaseHeader(const hdt::Hdt& tree, const dsl::Program& p) {
  return "program: " + dsl::ToString(p) + "\ndocument:\n" +
         tree.ToDebugString();
}

std::vector<dsl::NodeTuple> Sorted(std::vector<dsl::NodeTuple> v) {
  std::sort(v.begin(), v.end());
  return v;
}

CheckResult CompareTupleSets(const hdt::Hdt& tree, const dsl::Program& p,
                             const char* name_a,
                             const std::vector<dsl::NodeTuple>& a,
                             const char* name_b,
                             const std::vector<dsl::NodeTuple>& b) {
  if (a == b) return CheckResult::Pass();
  return CheckResult::Fail(std::string(name_a) + " and " + name_b +
                           " disagree\n" + CaseHeader(tree, p) + name_a +
                           " (" + std::to_string(a.size()) + " tuples):\n" +
                           DumpTuples(a) + name_b + " (" +
                           std::to_string(b.size()) + " tuples):\n" +
                           DumpTuples(b));
}

/// The DSL concrete syntax has no standalone atom pool — atoms print
/// inline per literal, and the parser rebuilds the pool in first-use
/// order with identical atoms interned. Round-trip identity therefore
/// holds up to this normalization; apply it to both sides.
dsl::Program CanonicalizeAtomPool(const dsl::Program& p) {
  dsl::Program out;
  out.columns = p.columns;
  out.formula = p.formula;
  for (auto& clause : out.formula.clauses) {
    for (dsl::Literal& lit : clause) {
      const dsl::Atom& a = p.atoms[lit.atom];
      int idx = -1;
      for (size_t i = 0; i < out.atoms.size(); ++i) {
        if (out.atoms[i] == a) {
          idx = static_cast<int>(i);
          break;
        }
      }
      if (idx < 0) {
        idx = static_cast<int>(out.atoms.size());
        out.atoms.push_back(a);
      }
      lit.atom = idx;
    }
  }
  return out;
}

}  // namespace

CheckResult CheckExecutionEquivalence(const hdt::Hdt& tree,
                                      const dsl::Program& program,
                                      common::ThreadPool* pool) {
  auto reference = dsl::ReferenceEvalProgramNodeTuples(tree, program);
  auto naive = dsl::EvalProgramNodeTuples(tree, program);
  if (!reference.ok() || !naive.ok()) {
    // Resource caps: both baselines must agree that the case is too big.
    if (reference.ok() != naive.ok()) {
      return CheckResult::Fail(
          "status disagreement\n" + CaseHeader(tree, program) +
          "reference: " +
          (reference.ok() ? "OK" : reference.status().ToString()) +
          "\nnaive:     " + (naive.ok() ? "OK" : naive.status().ToString()));
    }
    return CheckResult::Skip();
  }

  std::vector<dsl::NodeTuple> ref_sorted = Sorted(std::move(reference).value());
  std::vector<dsl::NodeTuple> naive_sorted = Sorted(std::move(naive).value());
  CheckResult r = CompareTupleSets(tree, program, "reference", ref_sorted,
                                   "naive", naive_sorted);
  if (!r.ok) return r;

  core::OptimizedExecutor ex(program);
  auto seq = ex.ExecuteNodes(tree);
  if (!seq.ok()) {
    return CheckResult::Fail("optimized executor failed where naive "
                             "succeeded\n" +
                             CaseHeader(tree, program) + seq.status().ToString());
  }
  r = CompareTupleSets(tree, program, "reference", ref_sorted,
                       "optimized(seq)", Sorted(*seq));
  if (!r.ok) return r;

  if (pool != nullptr) {
    core::ExecuteOptions popts;
    popts.pool = pool;
    auto par = ex.ExecuteNodes(tree, popts);
    if (!par.ok()) {
      return CheckResult::Fail("pooled executor failed\n" +
                               CaseHeader(tree, program) +
                               par.status().ToString());
    }
    // The parallel merge is order-preserving: require the exact sequence.
    if (*par != *seq) {
      return CheckResult::Fail(
          "pooled tuple sequence differs from sequential\n" +
          CaseHeader(tree, program) + "sequential:\n" + DumpTuples(*seq) +
          "pooled:\n" + DumpTuples(*par));
    }
  }

  core::ColumnCache cache;
  core::ExecuteOptions copts;
  copts.column_cache = &cache;
  for (int round = 0; round < 2; ++round) {
    auto cached = ex.ExecuteNodes(tree, copts);
    if (!cached.ok()) {
      return CheckResult::Fail("column-cached executor failed\n" +
                               CaseHeader(tree, program) +
                               cached.status().ToString());
    }
    if (*cached != *seq) {
      return CheckResult::Fail(
          "column-cached run " + std::to_string(round) +
          " differs from sequential\n" + CaseHeader(tree, program) +
          "sequential:\n" + DumpTuples(*seq) + "cached:\n" +
          DumpTuples(*cached));
    }
  }

  // Data projection must agree too (tables, not just node ids).
  auto table_naive = dsl::EvalProgram(tree, program);
  auto table_ref = dsl::ReferenceEvalProgram(tree, program);
  auto table_opt = ex.Execute(tree);
  if (!table_naive.ok() || !table_ref.ok() || !table_opt.ok()) {
    return CheckResult::Fail("table projection failed\n" +
                             CaseHeader(tree, program));
  }
  auto sorted_rows = [](const hdt::Table& t) {
    std::vector<hdt::Row> rows = t.rows();
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  if (sorted_rows(*table_naive) != sorted_rows(*table_ref) ||
      sorted_rows(*table_naive) != sorted_rows(*table_opt)) {
    return CheckResult::Fail("projected tables disagree\n" +
                             CaseHeader(tree, program) + "naive:\n" +
                             table_naive->ToString() + "reference:\n" +
                             table_ref->ToString() + "optimized:\n" +
                             table_opt->ToString());
  }
  return CheckResult::Pass();
}

CheckResult CheckXmlRoundTrip(const hdt::Hdt& tree) {
  for (bool pretty : {true, false}) {
    xml::WriteOptions w;
    w.pretty = pretty;
    auto textr = xml::WriteXml(tree, w);
    if (!textr.ok()) {
      // Generators stay far below kMaxWriteDepth; overflow means a bug.
      return CheckResult::Fail("XML write failed (" + textr.status().ToString() +
                               ")\ndocument:\n" + tree.ToDebugString());
    }
    std::string text = std::move(*textr);
    auto back = xml::ParseXml(text);
    if (!back.ok()) {
      return CheckResult::Fail("XML re-parse failed (" +
                               back.status().ToString() + ")\ndocument:\n" +
                               tree.ToDebugString() + "text:\n" + text);
    }
    if (back->ToDebugString() != tree.ToDebugString()) {
      return CheckResult::Fail("XML round-trip changed the tree (pretty=" +
                               std::string(pretty ? "1" : "0") +
                               ")\noriginal:\n" + tree.ToDebugString() +
                               "reparsed:\n" + back->ToDebugString() +
                               "text:\n" + text);
    }
    // Write-normal-form idempotence.
    std::string text2 = *xml::WriteXml(*back, w);
    if (text2 != text) {
      return CheckResult::Fail("XML write not idempotent\nfirst:\n" + text +
                               "second:\n" + text2);
    }
  }
  return CheckResult::Pass();
}

CheckResult CheckJsonRoundTrip(const hdt::Hdt& tree) {
  for (bool pretty : {true, false}) {
    json::JsonWriteOptions w;
    w.pretty = pretty;
    auto textr = json::WriteJson(tree, w);
    if (!textr.ok()) {
      return CheckResult::Fail("JSON write failed (" +
                               textr.status().ToString() + ")\ndocument:\n" +
                               tree.ToDebugString());
    }
    std::string text = std::move(*textr);
    auto back = json::ParseJson(text);
    if (!back.ok()) {
      return CheckResult::Fail("JSON re-parse failed (" +
                               back.status().ToString() + ")\ndocument:\n" +
                               tree.ToDebugString() + "text:\n" + text);
    }
    if (back->ToDebugString() != tree.ToDebugString()) {
      return CheckResult::Fail("JSON round-trip changed the tree (pretty=" +
                               std::string(pretty ? "1" : "0") +
                               ")\noriginal:\n" + tree.ToDebugString() +
                               "reparsed:\n" + back->ToDebugString() +
                               "text:\n" + text);
    }
    std::string text2 = *json::WriteJson(*back, w);
    if (text2 != text) {
      return CheckResult::Fail("JSON write not idempotent\nfirst:\n" + text +
                               "second:\n" + text2);
    }
  }
  return CheckResult::Pass();
}

CheckResult CheckDslRoundTrip(const dsl::Program& program) {
  std::string text = dsl::ToString(program);
  auto back = dsl::ParseProgram(text);
  if (!back.ok()) {
    return CheckResult::Fail("DSL re-parse failed (" +
                             back.status().ToString() + ")\ntext: " + text);
  }
  dsl::Program want = CanonicalizeAtomPool(program);
  dsl::Program got = CanonicalizeAtomPool(*back);
  if (got.columns != want.columns || got.atoms != want.atoms ||
      !(got.formula == want.formula)) {
    return CheckResult::Fail("DSL round-trip changed the program\noriginal: " +
                             text + "\nreparsed: " + dsl::ToString(*back));
  }
  return CheckResult::Pass();
}

CheckResult CheckSynthesisSoundness(const hdt::Hdt& tree,
                                    const dsl::Program& program, Rng* rng,
                                    double time_limit_seconds) {
  auto derived = dsl::EvalProgram(tree, program);
  if (!derived.ok() || derived->Empty()) return CheckResult::Skip();
  hdt::Table want = std::move(derived).value();
  want.Dedup();
  if (want.NumRows() > 24) return CheckResult::Skip();
  for (const hdt::Row& row : want.rows()) {
    for (const std::string& cell : row) {
      if (cell.empty()) return CheckResult::Skip();  // nil-data projection
    }
  }

  core::SynthesisOptions opts;
  opts.time_limit_seconds = time_limit_seconds;
  auto result = core::LearnTransformation(tree, want, opts);
  if (!result.ok()) {
    return CheckResult::Fail(
        "synthesis failed on a DSL-derived example: " +
        result.status().ToString() + "\n" + CaseHeader(tree, program) +
        "example table:\n" + want.ToString());
  }

  auto check_on = [&](const hdt::Hdt& doc, const char* label) {
    auto expect = dsl::ReferenceEvalProgram(doc, program);
    auto got = dsl::EvalProgram(doc, result->program);
    if (!expect.ok() || !got.ok()) {
      return CheckResult::Fail(std::string("evaluation failed on ") + label +
                               "\n" + CaseHeader(doc, program));
    }
    hdt::Table e = std::move(expect).value();
    hdt::Table g = std::move(got).value();
    e.Dedup();
    e.SortRows();
    g.Dedup();
    g.SortRows();
    if (e.rows() != g.rows()) {
      return CheckResult::Fail(
          std::string("synthesized program diverges on ") + label +
          "\nintended:    " + dsl::ToString(program) +
          "\nsynthesized: " + dsl::ToString(result->program) +
          "\ndocument:\n" + doc.ToDebugString() + "expected:\n" +
          e.ToString() + "got:\n" + g.ToString());
    }
    return CheckResult::Pass();
  };

  CheckResult on_example = check_on(tree, "the example document");
  if (!on_example.ok) return on_example;

  // Enlarged-document half. The program synthesized from d is NOT
  // required to match ⟦P⟧ on d' — when a cheaper program agrees with P
  // on d but diverges on d', Occam ranking legitimately picks it and no
  // synthesizer could know better. What soundness does require is that
  // synthesizing from the *enlarged* example (d', ⟦P⟧d'), which pins the
  // distinguishing behavior down, reproduces ⟦P⟧d' — so that is the
  // check, exercising the full pipeline at the larger size.
  hdt::Hdt larger = EnlargeDocument(rng, tree, 2);
  auto derived2 = dsl::ReferenceEvalProgram(larger, program);
  if (!derived2.ok() || derived2->Empty()) return CheckResult::Pass();
  hdt::Table want2 = std::move(derived2).value();
  want2.Dedup();
  if (want2.NumRows() > 48) return CheckResult::Pass();
  for (const hdt::Row& row : want2.rows()) {
    for (const std::string& cell : row) {
      if (cell.empty()) return CheckResult::Pass();
    }
  }
  auto result2 = core::LearnTransformation(larger, want2, opts);
  if (!result2.ok()) {
    return CheckResult::Fail(
        "synthesis failed on the enlarged DSL-derived example: " +
        result2.status().ToString() + "\n" + CaseHeader(larger, program) +
        "example table:\n" + want2.ToString());
  }
  auto got2 = dsl::EvalProgram(larger, result2->program);
  if (!got2.ok()) {
    return CheckResult::Fail("evaluation failed on the enlarged document\n" +
                             CaseHeader(larger, result2->program));
  }
  hdt::Table g2 = std::move(got2).value();
  g2.Dedup();
  g2.SortRows();
  hdt::Table w2 = want2;
  w2.SortRows();
  if (g2.rows() != w2.rows()) {
    return CheckResult::Fail(
        "program synthesized from the enlarged example diverges on it\n"
        "intended:    " +
        dsl::ToString(program) +
        "\nsynthesized: " + dsl::ToString(result2->program) +
        "\ndocument:\n" + larger.ToDebugString() + "expected:\n" +
        w2.ToString() + "got:\n" + g2.ToString());
  }
  return CheckResult::Pass();
}

}  // namespace mitra::testing
