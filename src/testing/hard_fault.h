#ifndef MITRA_TESTING_HARD_FAULT_H_
#define MITRA_TESTING_HARD_FAULT_H_

#include <string>

/// \file hard_fault.h
/// Env-triggered hard-fault injection for the process-isolation torture
/// tests (ISSUE 10). Unlike testing::FaultInjector — which makes governed
/// code return Status errors — these faults do NOT unwind: they abort,
/// spin, or exhaust memory exactly like the real-world worker deaths the
/// supervisor must contain. They are compiled into mitra_testing and
/// wired into the `mitra batch-worker` pre-document hook only, so
/// production in-process runs never consult them.
///
/// MITRA_HARD_FAULT holds ';'-separated directives `kind=substr`; a
/// directive fires when `substr` occurs in the document path about to be
/// executed:
///   abort=<substr>   SIGABRT via std::abort() (a crashed worker)
///   segv=<substr>    SIGSEGV via a wild store (a memory-corrupt worker)
///   spin=<substr>    ungoverned busy loop, never returns (a hung worker;
///                    killed by the wall-clock or heartbeat watchdog, or
///                    by SIGXCPU under an rlimit)
///   leak=<substr>    allocate-and-touch until the allocator fails (an
///                    OOM worker; under RLIMIT_AS this dies as bad_alloc
///                    -> std::terminate -> SIGABRT)

namespace mitra::testing {

/// Applies the first MITRA_HARD_FAULT directive matching `doc_path`, if
/// any. May not return. No-op when the variable is unset or nothing
/// matches.
void MaybeTriggerHardFault(const std::string& doc_path);

}  // namespace mitra::testing

#endif  // MITRA_TESTING_HARD_FAULT_H_
