#include "testing/generators.h"

#include <vector>

#include "dsl/eval.h"
#include "testing/tree_edit.h"

namespace mitra::testing {

namespace {

/// Small recurring tag vocabulary — recurring tags across levels is what
/// makes descendants/pchildren extractions and join predicates non-trivial.
/// Includes "text" on purpose: an *element* named text must survive
/// round-trips (it is distinct from a mixed-content text run).
const char* const kTags[] = {"a", "b", "c", "item", "name", "text"};
const char* const kAttrNames[] = {"id", "k0", "k1", "lang"};

/// Plain data values: identifiers and small numbers (small pools make
/// value-join predicates match often).
const char* const kPlainData[] = {"x", "y", "z", "0", "1", "7", "42", "-3.5"};

/// Tricky values: escaping, entity lookalikes, number-lookalike strings,
/// multi-byte UTF-8 — the payloads that historically break writers.
/// All are XML-safe per the encoding invariants: non-empty, no leading or
/// trailing whitespace (the XML parser trims character data).
const char* const kTrickyData[] = {
    "007",          "1.",           "2e3",         "-0",
    "true",         "null",         "&#65;",       "&amp;lt;",
    "<i>",          "\"q\"",        "it's",        "a  b",
    "h\xc3\xa9llo", "\xf0\x9f\x98\x80", "tab\tsep", "nl\nnl",
};

std::string PickData(Rng* rng, bool tricky) {
  if (tricky && rng->Chance(2, 5)) {
    return kTrickyData[rng->Below(sizeof(kTrickyData) / sizeof(char*))];
  }
  return kPlainData[rng->Below(sizeof(kPlainData) / sizeof(char*))];
}

const char* PickTag(Rng* rng) {
  return kTags[rng->Below(sizeof(kTags) / sizeof(char*))];
}

/// Recursively grows an XML- or JSON-shaped subtree under `parent`,
/// spending at most `*budget` nodes.
void GrowChildren(Rng* rng, const DocGenOptions& opts, hdt::Hdt* t,
                  hdt::NodeId parent, int depth, int* budget) {
  if (*budget <= 0 || depth > 5) return;

  if (opts.xml_shape) {
    // Attributes first (the parser records them before content).
    if (opts.xml_shape && depth > 0 && rng->Chance(1, 4)) {
      int n_attrs = rng->Range(1, 2);
      for (int i = 0; i < n_attrs && *budget > 0; ++i) {
        // Unique names per element: pick disjoint indices.
        const char* name = kAttrNames[(rng->Below(2) + 2 * i) % 4];
        t->AddAttribute(parent, name, PickData(rng, opts.tricky_data));
        --*budget;
      }
    }
    int n_children = rng->Range(depth == 0 ? 1 : 0, 3);
    for (int i = 0; i < n_children && *budget > 0; ++i) {
      uint32_t kind = rng->Below(10);
      if (kind < 5) {
        // Data leaf (never gets attributes or children — parser image).
        t->AddChild(parent, PickTag(rng), PickData(rng, opts.tricky_data));
        --*budget;
      } else if (kind < 8) {
        hdt::NodeId c = t->AddChild(parent, PickTag(rng));
        --*budget;
        GrowChildren(rng, opts, t, c, depth + 1, budget);
      } else {
        // Mixed-content text run: only valid when the element has other
        // children (a lone run would collapse into element data) and the
        // preceding child is not itself a run (adjacent character data
        // merges into one run on re-parse).
        const auto siblings = t->Children(parent);
        if (!siblings.empty() && !t->IsTextRun(siblings.back())) {
          t->AddTextRun(parent, PickData(rng, opts.tricky_data));
          --*budget;
        }
      }
    }
  } else {
    // JSON shape: children come in same-key groups (the writer groups
    // same-tag siblings into one array, so they must be consecutive).
    // A key may repeat under `parent` only by extending the tail group —
    // anywhere else the writer's grouping would reorder the children.
    int n_groups = rng->Range(depth == 0 ? 1 : 0, 3);
    for (int g = 0; g < n_groups && *budget > 0; ++g) {
      const char* key = nullptr;
      for (int attempt = 0; attempt < 8 && key == nullptr; ++attempt) {
        const char* cand = PickTag(rng);
        bool used_before_tail = false;
        const auto kids = t->Children(parent);
        for (size_t s = 0; s + 1 < kids.size(); ++s) {
          if (t->TagName(t->node(kids[s]).tag) == cand) {
            used_before_tail = true;
            break;
          }
        }
        if (!used_before_tail) key = cand;
      }
      if (key == nullptr) break;  // vocabulary exhausted for this parent
      int size = rng->Chance(1, 3) ? rng->Range(2, 3) : 1;
      for (int i = 0; i < size && *budget > 0; ++i) {
        if (rng->Chance(3, 5) || depth >= 4) {
          t->AddChild(parent, key, PickData(rng, opts.tricky_data));
          --*budget;
        } else {
          hdt::NodeId c = t->AddChild(parent, key);
          --*budget;
          GrowChildren(rng, opts, t, c, depth + 1, budget);
        }
      }
    }
  }
}

}  // namespace

hdt::Hdt GenerateDocument(Rng* rng, const DocGenOptions& opts) {
  hdt::Hdt t;
  hdt::NodeId root = t.AddRoot(opts.xml_shape ? "r" : "root");
  int budget = opts.max_nodes - 1;
  // Keep growing top-level sections until the budget is spent, so small
  // budgets still produce multi-child roots most of the time.
  int guard = 0;
  while (budget > 0 && guard++ < 8) {
    GrowChildren(rng, opts, &t, root, 0, &budget);
  }
  return t;
}

hdt::Hdt EnlargeDocument(Rng* rng, const hdt::Hdt& tree, int extra_subtrees,
                         const DocGenOptions& opts) {
  hdt::Hdt out = CopyTree(tree);
  if (out.empty() || out.HasData(out.root())) return out;
  // Replicate existing top-level subtrees with mutated string data, so the
  // grown document exercises the same tags at the same depths with fresh
  // values (numeric data is kept: re-numbering it would change numeric
  // predicate semantics in uninteresting ways).
  const auto top = tree.Children(tree.root());
  if (!top.empty()) {
    for (int i = 0; i < extra_subtrees; ++i) {
      hdt::NodeId pick = top[rng->Below(static_cast<uint32_t>(top.size()))];
      AppendSubtreeCopy(tree, pick, &out, out.root(),
                        "#e" + std::to_string(i));
    }
  }
  // Plus one fresh random subtree for new structure.
  int budget = 6;
  hdt::NodeId section = out.AddChild(out.root(), "a");
  GrowChildren(rng, opts, &out, section, 1, &budget);
  return out;
}

dsl::Program GenerateProgram(Rng* rng, const hdt::Hdt& tree,
                             const ProgGenOptions& opts) {
  std::vector<std::string> tags;
  for (hdt::TagId t : tree.AllTags()) tags.push_back(tree.TagName(t));
  if (tags.empty()) tags.push_back("a");
  std::vector<std::string> values = tree.AllDataValues();

  auto pick_tag = [&]() -> const std::string& {
    return tags[rng->Below(static_cast<uint32_t>(tags.size()))];
  };

  auto random_column = [&]() {
    dsl::ColumnExtractor pi;
    int steps = rng->Range(1, opts.max_col_steps);
    for (int i = 0; i < steps; ++i) {
      uint32_t r = rng->Below(10);
      dsl::ColStep st;
      if (r < 5) {
        st.op = dsl::ColOp::kChildren;
      } else if (r < 8) {
        st.op = dsl::ColOp::kDescendants;
      } else {
        st.op = dsl::ColOp::kPChildren;
        st.pos = static_cast<int32_t>(rng->Below(3));
      }
      st.tag = pick_tag();
      pi.steps.push_back(std::move(st));
    }
    return pi;
  };

  dsl::Program p;
  int k = rng->Range(1, opts.max_columns);
  uint64_t product = 1;
  for (int i = 0; i < k; ++i) {
    // Re-draw a few times to prefer non-empty extractions and to keep the
    // cross product within budget (naive evaluation must stay cheap).
    dsl::ColumnExtractor best;
    size_t best_size = 0;
    for (int attempt = 0; attempt < 6; ++attempt) {
      dsl::ColumnExtractor cand = random_column();
      size_t sz = dsl::EvalColumn(tree, cand).size();
      if (product * (sz ? sz : 1) > opts.max_cross_product) continue;
      best = std::move(cand);
      best_size = sz;
      if (sz > 0) break;
    }
    p.columns.push_back(std::move(best));
    product *= best_size ? best_size : 1;
  }

  auto random_path = [&]() {
    dsl::NodeExtractor phi;
    int steps = static_cast<int>(rng->Below(
        static_cast<uint32_t>(opts.max_node_steps + 1)));
    for (int i = 0; i < steps; ++i) {
      dsl::NodeStep st;
      if (rng->Chance(1, 2)) {
        st.op = dsl::NodeOp::kParent;
      } else {
        st.op = dsl::NodeOp::kChild;
        st.tag = pick_tag();
        st.pos = static_cast<int32_t>(rng->Below(2));
      }
      phi.steps.push_back(std::move(st));
    }
    return phi;
  };

  auto random_cmp = [&]() {
    uint32_t r = rng->Below(10);
    if (r < 5) return dsl::CmpOp::kEq;
    if (r < 6) return dsl::CmpOp::kNe;
    if (r < 7) return dsl::CmpOp::kLt;
    if (r < 8) return dsl::CmpOp::kLe;
    if (r < 9) return dsl::CmpOp::kGt;
    return dsl::CmpOp::kGe;
  };

  int n_atoms = static_cast<int>(
      rng->Below(static_cast<uint32_t>(opts.max_atoms + 1)));
  for (int i = 0; i < n_atoms; ++i) {
    dsl::Atom a;
    a.lhs_col = static_cast<int>(rng->Below(static_cast<uint32_t>(k)));
    a.lhs_path = random_path();
    a.op = random_cmp();
    if (values.empty() || rng->Chance(1, 2)) {
      a.rhs_is_const = true;
      a.rhs_const = values.empty()
                        ? PickData(rng, true)
                        : values[rng->Below(
                              static_cast<uint32_t>(values.size()))];
    } else {
      a.rhs_is_const = false;
      a.rhs_col = static_cast<int>(rng->Below(static_cast<uint32_t>(k)));
      a.rhs_path = random_path();
    }
    p.atoms.push_back(std::move(a));
  }

  if (p.atoms.empty()) {
    p.formula = rng->Chance(1, 20) ? dsl::Dnf::False() : dsl::Dnf::True();
  } else {
    dsl::Dnf f;
    int n_clauses = rng->Range(1, 2);
    for (int c = 0; c < n_clauses; ++c) {
      std::vector<dsl::Literal> clause;
      int n_lits = rng->Range(1, 2);
      for (int l = 0; l < n_lits; ++l) {
        dsl::Literal lit;
        lit.atom = static_cast<int>(
            rng->Below(static_cast<uint32_t>(p.atoms.size())));
        lit.negated = rng->Chance(1, 4);
        clause.push_back(lit);
      }
      f.clauses.push_back(std::move(clause));
    }
    p.formula = std::move(f);
  }
  // Random draws can repeat an atom or leave one unreferenced; canonical
  // form is what the printer emits and the parser reconstructs.
  p.Normalize();
  return p;
}

}  // namespace mitra::testing
