#include "testing/shrink.h"

#include <utility>
#include <vector>

#include "testing/tree_edit.h"
#include "xml/xml_writer.h"

namespace mitra::testing {

namespace {

/// Drops atoms not referenced by any literal and renumbers the formula.
dsl::Program DropUnusedAtoms(const dsl::Program& p) {
  std::vector<int> remap(p.atoms.size(), -1);
  dsl::Program out;
  out.columns = p.columns;
  for (const auto& clause : p.formula.clauses) {
    for (const dsl::Literal& lit : clause) {
      if (lit.atom >= 0 && static_cast<size_t>(lit.atom) < p.atoms.size() &&
          remap[lit.atom] < 0) {
        remap[lit.atom] = static_cast<int>(out.atoms.size());
        out.atoms.push_back(p.atoms[lit.atom]);
      }
    }
  }
  out.formula = p.formula;
  for (auto& clause : out.formula.clauses) {
    for (dsl::Literal& lit : clause) lit.atom = remap[lit.atom];
  }
  return out;
}

/// All single-edit program shrinks, roughly largest-effect first.
std::vector<dsl::Program> ProgramShrinks(const dsl::Program& p) {
  std::vector<dsl::Program> out;

  // Replace the whole formula with true.
  if (!p.formula.IsTrue()) {
    dsl::Program q = p;
    q.formula = dsl::Dnf::True();
    q.atoms.clear();
    out.push_back(std::move(q));
  }
  // Drop one clause.
  for (size_t c = 0; c < p.formula.clauses.size(); ++c) {
    dsl::Program q = p;
    q.formula.clauses.erase(q.formula.clauses.begin() +
                            static_cast<long>(c));
    out.push_back(DropUnusedAtoms(q));
  }
  // Drop one literal.
  for (size_t c = 0; c < p.formula.clauses.size(); ++c) {
    for (size_t l = 0; l < p.formula.clauses[c].size(); ++l) {
      dsl::Program q = p;
      q.formula.clauses[c].erase(q.formula.clauses[c].begin() +
                                 static_cast<long>(l));
      out.push_back(DropUnusedAtoms(q));
    }
  }
  // Drop one column (only when >1 remain); atoms referencing it — or any
  // later column, whose index shifts — are dropped with their literals.
  if (p.columns.size() > 1) {
    for (size_t col = 0; col < p.columns.size(); ++col) {
      dsl::Program q;
      q.columns = p.columns;
      q.columns.erase(q.columns.begin() + static_cast<long>(col));
      auto maps = [&](int i) {
        return i != static_cast<int>(col);
      };
      auto shift = [&](int i) {
        return i > static_cast<int>(col) ? i - 1 : i;
      };
      std::vector<int> remap(p.atoms.size(), -1);
      for (size_t a = 0; a < p.atoms.size(); ++a) {
        const dsl::Atom& atom = p.atoms[a];
        if (!maps(atom.lhs_col)) continue;
        if (!atom.rhs_is_const && !maps(atom.rhs_col)) continue;
        dsl::Atom moved = atom;
        moved.lhs_col = shift(moved.lhs_col);
        if (!moved.rhs_is_const) moved.rhs_col = shift(moved.rhs_col);
        remap[a] = static_cast<int>(q.atoms.size());
        q.atoms.push_back(std::move(moved));
      }
      for (const auto& clause : p.formula.clauses) {
        std::vector<dsl::Literal> kept;
        bool clause_ok = true;
        for (const dsl::Literal& lit : clause) {
          if (remap[lit.atom] < 0) {
            clause_ok = false;
            break;
          }
          kept.push_back({remap[lit.atom], lit.negated});
        }
        if (clause_ok) q.formula.clauses.push_back(std::move(kept));
      }
      out.push_back(std::move(q));
    }
  }
  // Drop one step from a column extractor.
  for (size_t col = 0; col < p.columns.size(); ++col) {
    for (size_t s = 0; s < p.columns[col].steps.size(); ++s) {
      dsl::Program q = p;
      q.columns[col].steps.erase(q.columns[col].steps.begin() +
                                 static_cast<long>(s));
      out.push_back(std::move(q));
    }
  }
  // Drop one step from an atom's node extractors.
  for (size_t a = 0; a < p.atoms.size(); ++a) {
    for (size_t s = 0; s < p.atoms[a].lhs_path.steps.size(); ++s) {
      dsl::Program q = p;
      q.atoms[a].lhs_path.steps.erase(q.atoms[a].lhs_path.steps.begin() +
                                      static_cast<long>(s));
      out.push_back(std::move(q));
    }
    if (!p.atoms[a].rhs_is_const) {
      for (size_t s = 0; s < p.atoms[a].rhs_path.steps.size(); ++s) {
        dsl::Program q = p;
        q.atoms[a].rhs_path.steps.erase(q.atoms[a].rhs_path.steps.begin() +
                                        static_cast<long>(s));
        out.push_back(std::move(q));
      }
    }
  }
  return out;
}

}  // namespace

ShrunkCase ShrinkCase(const hdt::Hdt& doc, const dsl::Program& program,
                      const FailurePredicate& still_fails, int max_edits) {
  ShrunkCase cur{CopyTree(doc), program, 0};
  int budget = max_edits;
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;

    // Document pass: try dropping each non-root subtree. Node ids are
    // preorder, so low ids are big subtrees — try those first.
    for (hdt::NodeId victim = 1;
         victim < static_cast<hdt::NodeId>(cur.doc.size()) && budget > 0;
         ++victim) {
      --budget;
      hdt::Hdt smaller = CopyWithoutSubtree(cur.doc, victim);
      if (still_fails(smaller, cur.program)) {
        cur.doc = std::move(smaller);
        ++cur.edits;
        progress = true;
        victim = 0;  // restart: ids were renumbered
      }
    }

    // Program pass.
    bool shrunk = true;
    while (shrunk && budget > 0) {
      shrunk = false;
      for (dsl::Program& cand : ProgramShrinks(cur.program)) {
        if (budget-- <= 0) break;
        if (still_fails(cur.doc, cand)) {
          cur.program = std::move(cand);
          ++cur.edits;
          progress = true;
          shrunk = true;
          break;
        }
      }
    }
  }
  return cur;
}

std::string DescribeCase(const hdt::Hdt& doc, const dsl::Program& program) {
  return "program: " + dsl::ToString(program) + "\ndocument (debug):\n" +
         doc.ToDebugString() + "document (xml):\n" + *xml::WriteXml(doc) +
         "\n";
}

}  // namespace mitra::testing
