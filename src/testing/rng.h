#ifndef MITRA_TESTING_RNG_H_
#define MITRA_TESTING_RNG_H_

#include <cstdint>

/// \file rng.h
/// Deterministic, platform-stable PRNG for the property/fuzz harnesses.
/// std::mt19937 itself is portable but the standard *distributions* are
/// not (libstdc++ and libc++ produce different streams), so every failure
/// seed printed by a test must be replayed through this engine to get the
/// same document and program back on any toolchain.

namespace mitra::testing {

/// SplitMix64 (Steele et al., "Fast splittable pseudorandom number
/// generators") — tiny, full-period, and stable across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, n). n must be > 0.
  uint32_t Below(uint32_t n) { return static_cast<uint32_t>(Next() % n); }

  /// True with probability num/den.
  bool Chance(uint32_t num, uint32_t den) { return Below(den) < num; }

  /// Uniform value in [lo, hi] inclusive.
  int32_t Range(int32_t lo, int32_t hi) {
    return lo + static_cast<int32_t>(Below(static_cast<uint32_t>(hi - lo + 1)));
  }

 private:
  uint64_t state_;
};

}  // namespace mitra::testing

#endif  // MITRA_TESTING_RNG_H_
