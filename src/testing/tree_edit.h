#ifndef MITRA_TESTING_TREE_EDIT_H_
#define MITRA_TESTING_TREE_EDIT_H_

#include <set>
#include <string>

#include "hdt/hdt.h"

/// \file tree_edit.h
/// Structural HDT edits used by the generators and the shrinker. All
/// helpers rebuild trees through the ordinary builder API, so positions
/// are renumbered and every result is a valid HDT; provenance flags
/// (attribute / text-run) are preserved.

namespace mitra::testing {

/// Appends a copy of the subtree rooted at `src_node` under `dst_parent`.
/// When `mutate_suffix` is non-empty, non-numeric data values not listed
/// in `preserve` get the suffix appended (keeps copies distinguishable,
/// mirroring workload::ReplicateDocument).
void AppendSubtreeCopy(const hdt::Hdt& src, hdt::NodeId src_node,
                       hdt::Hdt* dst, hdt::NodeId dst_parent,
                       const std::string& mutate_suffix = "",
                       const std::set<std::string>* preserve = nullptr);

/// Deep copy of a whole tree.
hdt::Hdt CopyTree(const hdt::Hdt& src);

/// Copy of `src` with the subtree rooted at `victim` removed. `victim`
/// must not be the root.
hdt::Hdt CopyWithoutSubtree(const hdt::Hdt& src, hdt::NodeId victim);

}  // namespace mitra::testing

#endif  // MITRA_TESTING_TREE_EDIT_H_
