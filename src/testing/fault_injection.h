#ifndef MITRA_TESTING_FAULT_INJECTION_H_
#define MITRA_TESTING_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/fs.h"
#include "common/governor.h"
#include "common/status.h"

/// \file fault_injection.h
/// The fault-injection harness (ISSUE 4): simulated faults delivered at
/// the governor's check sites and at the filesystem shim, plus poisoned
/// documents, so tests can assert that *every* injected fault surfaces as
/// a clean Status — never a crash, hang, or sanitizer report — and that
/// degraded migrations keep unaffected tables bit-identical to no-fault
/// runs.
///
/// Three fault channels:
///  - FaultInjector: a common::FaultProbe installed process-globally. It
///    targets check sites by name prefix ("alloc/" = allocation failure,
///    "dfa/" = synthesis phase faults, "" = everywhere) and fires either
///    at the Nth matching probe (deterministic single-point injection) or
///    pseudo-randomly 1-in-N from a seed (soak testing).
///  - FaultyFileSystem: wraps another FileSystem and fails reads/writes
///    whose path contains a marker, or after a budget of operations
///    (simulated I/O errors for the CLI and corpus loaders).
///  - PoisonDocument (generators for malformed inputs live in
///    generators.h; here we only provide the canonical "poisoned" XML
///    that parses fine but explodes any synthesis budget).
///
/// All counters are atomics: governed phases probe from pool workers.

namespace mitra::test {

/// Process-global fault probe with prefix targeting. Install via
/// ScopedFaultInjector (RAII) rather than SetGlobalFaultProbe directly.
class FaultInjector : public common::FaultProbe {
 public:
  struct Options {
    /// Only sites whose name starts with this fire ("" = every site;
    /// "alloc/" = the byte-charge sites = simulated allocation failure).
    std::string site_prefix;
    /// Fire at the Nth matching probe, 1-based (0 disables this trigger).
    std::uint64_t fail_at = 0;
    /// Additionally fire pseudo-randomly ~1-in-N (0 disables).
    std::uint64_t fail_one_in = 0;
    std::uint64_t seed = 1;
    /// Status the fault surfaces as. kResourceExhausted mimics budget
    /// overrun; kInternal mimics an environment failure.
    StatusCode code = StatusCode::kResourceExhausted;
  };

  explicit FaultInjector(Options opts) : opts_(std::move(opts)) {}

  Status OnProbe(const char* site) override;

  /// Matching probes observed so far.
  std::uint64_t probes() const {
    return probes_.load(std::memory_order_relaxed);
  }
  /// Faults actually injected so far.
  std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  Options opts_;
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> injected_{0};
};

/// Installs a FaultInjector as the process-global probe for the lifetime
/// of the scope. Not nestable (asserts no other probe is installed).
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector::Options opts);
  ~ScopedFaultInjector();
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
};

/// A FileSystem wrapper that injects I/O errors: any operation whose path
/// contains `fail_substring` fails, as does every operation past
/// `fail_after_ops` successful ones (0 = unlimited), as does a
/// pseudo-random 1-in-`fail_one_in` sample (transient-fault soak: with
/// `code = kUnavailable` the pipeline's RetryPolicy recovers, since the
/// retried operation draws a fresh sample). WriteFileAtomic is inherited
/// from the base class and decomposes into WriteFile(temp) + Rename, so
/// faults land on each phase of the two-phase protocol independently.
class FaultyFileSystem : public common::FileSystem {
 public:
  struct Options {
    std::string fail_substring;
    std::uint64_t fail_after_ops = 0;
    /// Additionally fail ~1-in-N operations, sampled deterministically
    /// from (seed, op index). 0 disables.
    std::uint64_t fail_one_in = 0;
    std::uint64_t seed = 1;
    /// Status class injected faults surface as. kInternal mimics an
    /// environment failure (permanent); kUnavailable marks the fault
    /// transient so common::RetryPolicy will retry it.
    StatusCode code = StatusCode::kInternal;
  };

  FaultyFileSystem(common::FileSystem* base, Options opts)
      : base_(base), opts_(std::move(opts)) {}

  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path,
                   const std::string& content) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  Status Remove(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;

  std::uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  Status MaybeFail(const std::string& path, const char* op);

  common::FileSystem* base_;
  Options opts_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> failures_{0};
};

/// A well-formed XML document engineered to be expensive to synthesize
/// against: `width` repeated sibling subtrees of near-identical shape
/// whose values collide, so column DFAs and the predicate universe blow
/// up before any budget-free search terminates. Pair with a small budget
/// to exercise the degradation ladder deterministically.
std::string PoisonedXmlDocument(int width);

}  // namespace mitra::test

#endif  // MITRA_TESTING_FAULT_INJECTION_H_
