#ifndef MITRA_TESTING_CRASH_POINT_H_
#define MITRA_TESTING_CRASH_POINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/status.h"

/// \file crash_point.h
/// Crash-torture harness (ISSUE 9): a FileSystem wrapper that simulates a
/// process crash at the k-th filesystem MUTATION. Mutations are WriteFile,
/// Rename, and Remove — and because FileSystem::WriteFileAtomic decomposes
/// into WriteFile(temp) + Rename through the wrapper's own virtuals, the
/// sweep over k automatically lands one crash point INSIDE every atomic
/// write, between temp-write and rename (temp staged, destination
/// untouched).
///
/// Semantics of "crash": the k-th mutation is NOT applied and the wrapper
/// goes dead — every subsequent operation (reads included) fails, exactly
/// as if the process had been killed: the base filesystem retains the
/// state as of mutation k-1, plus whatever staging temp files were
/// already written. The torture test then "reboots" by dropping the
/// wrapper and re-running the batch with --resume against the base.
///
/// All counters are atomics; the pipeline probes from pool workers.

namespace mitra::test {

class CrashPointFileSystem : public common::FileSystem {
 public:
  /// Crashes at the `crash_at`-th mutation, 1-based (0 = never crash —
  /// used to count a run's total mutations and size the sweep).
  CrashPointFileSystem(common::FileSystem* base, std::uint64_t crash_at)
      : base_(base), crash_at_(crash_at) {}

  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path,
                   const std::string& content) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  Status Remove(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;

  /// Mutations observed so far (applied or crashed-on).
  std::uint64_t mutations() const {
    return mutations_.load(std::memory_order_relaxed);
  }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

 private:
  /// Counts a mutation; non-OK when this one (or an earlier one) crashed.
  Status OnMutation(const std::string& path, const char* op);
  Status DeadStatus(const std::string& path, const char* op) const;

  common::FileSystem* base_;
  const std::uint64_t crash_at_;
  std::atomic<std::uint64_t> mutations_{0};
  std::atomic<bool> crashed_{false};
};

}  // namespace mitra::test

#endif  // MITRA_TESTING_CRASH_POINT_H_
