#include "testing/fault_injection.h"

#include <cassert>
#include <cstring>

namespace mitra::test {

namespace {

/// splitmix64: cheap, stateless, good-enough mixing for 1-in-N decisions.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Status FaultInjector::OnProbe(const char* site) {
  if (!opts_.site_prefix.empty() &&
      std::strncmp(site, opts_.site_prefix.c_str(),
                   opts_.site_prefix.size()) != 0) {
    return Status::OK();
  }
  const std::uint64_t n = probes_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = opts_.fail_at != 0 && n == opts_.fail_at;
  if (!fire && opts_.fail_one_in != 0) {
    fire = Mix64(n ^ (opts_.seed * 0x9E3779B97F4A7C15ull)) %
               opts_.fail_one_in ==
           0;
  }
  if (!fire) return Status::OK();
  injected_.fetch_add(1, std::memory_order_relaxed);
  return Status(opts_.code,
                std::string("injected fault at ") + site + " (probe " +
                    std::to_string(n) + ")");
}

ScopedFaultInjector::ScopedFaultInjector(FaultInjector::Options opts)
    : injector_(std::move(opts)) {
  assert(common::GetGlobalFaultProbe() == nullptr);
  common::SetGlobalFaultProbe(&injector_);
}

ScopedFaultInjector::~ScopedFaultInjector() {
  common::SetGlobalFaultProbe(nullptr);
}

Status FaultyFileSystem::MaybeFail(const std::string& path, const char* op) {
  if (!opts_.fail_substring.empty() &&
      path.find(opts_.fail_substring) != std::string::npos) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return Status(opts_.code,
                  std::string("injected I/O error: ") + op + " " + path);
  }
  const std::uint64_t n = ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (opts_.fail_after_ops != 0 && n > opts_.fail_after_ops) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return Status(opts_.code,
                  std::string("injected I/O error (op budget): ") + op + " " +
                      path);
  }
  if (opts_.fail_one_in != 0 &&
      Mix64(n ^ (opts_.seed * 0x9E3779B97F4A7C15ull)) % opts_.fail_one_in ==
          0) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return Status(opts_.code, std::string("injected I/O error (1-in-") +
                                  std::to_string(opts_.fail_one_in) + "): " +
                                  op + " " + path);
  }
  return Status::OK();
}

Result<std::string> FaultyFileSystem::ReadFile(const std::string& path) {
  MITRA_RETURN_IF_ERROR(MaybeFail(path, "read"));
  return base_->ReadFile(path);
}

Status FaultyFileSystem::WriteFile(const std::string& path,
                                   const std::string& content) {
  MITRA_RETURN_IF_ERROR(MaybeFail(path, "write"));
  return base_->WriteFile(path, content);
}

Result<std::vector<std::string>> FaultyFileSystem::ListDir(
    const std::string& dir) {
  MITRA_RETURN_IF_ERROR(MaybeFail(dir, "list"));
  return base_->ListDir(dir);
}

bool FaultyFileSystem::Exists(const std::string& path) {
  // Existence probes cannot report an error; pass through unfaulted.
  return base_->Exists(path);
}

Status FaultyFileSystem::Remove(const std::string& path) {
  MITRA_RETURN_IF_ERROR(MaybeFail(path, "remove"));
  return base_->Remove(path);
}

Status FaultyFileSystem::Rename(const std::string& from,
                                const std::string& to) {
  MITRA_RETURN_IF_ERROR(MaybeFail(to, "rename"));
  return base_->Rename(from, to);
}

std::string PoisonedXmlDocument(int width) {
  // Many near-identical siblings with colliding values: every column DFA
  // has `width` candidate nodes per value and the predicate universe
  // grows quadratically in the extractor count. Parses cleanly.
  std::string doc = "<db>";
  for (int i = 0; i < width; ++i) {
    const std::string v = std::to_string(i % 3);
    doc += "<rec><a>" + v + "</a><b>" + v + "</b><c><d>" + v + "</d><e>" +
           v + "</e></c></rec>";
  }
  doc += "</db>";
  return doc;
}

}  // namespace mitra::test
