#include "testing/hard_fault.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

namespace mitra::testing {

namespace {

[[noreturn]] void Abort() { std::abort(); }

[[noreturn]] void Segv() {
  // A wild store the optimizer cannot elide or reason away.
  volatile char* p = reinterpret_cast<volatile char*>(0x40);
  *p = 1;
  std::abort();  // unreachable; keeps [[noreturn]] honest
}

[[noreturn]] void Spin() {
  // Ungoverned: no Check() sites, so no heartbeats and no Status unwind —
  // only the supervisor's watchdog (or RLIMIT_CPU) ends this.
  volatile std::uint64_t x = 0;
  for (;;) x = x + 1;
}

[[noreturn]] void Leak() {
  // Touch every page so RSS (and committed address space) really grows;
  // under RLIMIT_AS operator new throws bad_alloc, which nothing
  // catches: std::terminate -> SIGABRT.
  std::vector<char*> hoard;
  for (;;) {
    char* block = new char[1 << 20];
    std::memset(block, 0x5a, 1 << 20);
    hoard.push_back(block);
  }
}

}  // namespace

void MaybeTriggerHardFault(const std::string& doc_path) {
  const char* spec = std::getenv("MITRA_HARD_FAULT");
  if (spec == nullptr || *spec == '\0') return;
  std::string_view rest(spec);
  while (!rest.empty()) {
    size_t semi = rest.find(';');
    std::string_view directive = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    size_t eq = directive.find('=');
    if (eq == std::string_view::npos) continue;
    std::string_view kind = directive.substr(0, eq);
    std::string_view substr = directive.substr(eq + 1);
    if (substr.empty() || doc_path.find(substr) == std::string::npos) {
      continue;
    }
    if (kind == "abort") Abort();
    if (kind == "segv") Segv();
    if (kind == "spin") Spin();
    if (kind == "leak") Leak();
  }
}

}  // namespace mitra::testing
