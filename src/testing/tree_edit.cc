#include "testing/tree_edit.h"

#include "common/strings.h"

namespace mitra::testing {

namespace {

void CopyRec(const hdt::Hdt& src, hdt::NodeId src_node, hdt::Hdt* dst,
             hdt::NodeId dst_parent, hdt::NodeId skip,
             const std::string& mutate_suffix,
             const std::set<std::string>* preserve) {
  if (src_node == skip) return;
  const hdt::Node& n = src.node(src_node);
  const std::string& tag = src.NodeTagName(src_node);
  hdt::NodeId copy;
  if (n.has_data) {
    std::string data = n.data;
    if (!mutate_suffix.empty() && !ParseNumber(data).has_value() &&
        (preserve == nullptr || preserve->count(data) == 0)) {
      data += mutate_suffix;
    }
    if (n.is_attribute) {
      copy = dst->AddAttribute(dst_parent, tag, data);
    } else if (n.is_text_run) {
      copy = dst->AddTextRun(dst_parent, data);
    } else {
      copy = dst->AddChild(dst_parent, tag, data);
    }
  } else {
    copy = dst->AddChild(dst_parent, tag);
  }
  for (hdt::NodeId c : src.Children(src_node)) {
    CopyRec(src, c, dst, copy, skip, mutate_suffix, preserve);
  }
}

hdt::Hdt CopyMaybeSkipping(const hdt::Hdt& src, hdt::NodeId skip) {
  hdt::Hdt out;
  if (src.empty()) return out;
  hdt::NodeId root = out.AddRoot(src.NodeTagName(src.root()));
  if (src.HasData(src.root())) {
    out.SetLeafData(root, src.Data(src.root()));
    return out;
  }
  for (hdt::NodeId c : src.Children(src.root())) {
    CopyRec(src, c, &out, root, skip, "", nullptr);
  }
  return out;
}

}  // namespace

void AppendSubtreeCopy(const hdt::Hdt& src, hdt::NodeId src_node,
                       hdt::Hdt* dst, hdt::NodeId dst_parent,
                       const std::string& mutate_suffix,
                       const std::set<std::string>* preserve) {
  CopyRec(src, src_node, dst, dst_parent, hdt::kInvalidNode, mutate_suffix,
          preserve);
}

hdt::Hdt CopyTree(const hdt::Hdt& src) {
  return CopyMaybeSkipping(src, hdt::kInvalidNode);
}

hdt::Hdt CopyWithoutSubtree(const hdt::Hdt& src, hdt::NodeId victim) {
  return CopyMaybeSkipping(src, victim);
}

}  // namespace mitra::testing
