#ifndef MITRA_TESTING_ORACLES_H_
#define MITRA_TESTING_ORACLES_H_

#include <string>

#include "dsl/ast.h"
#include "hdt/hdt.h"
#include "testing/rng.h"

/// \file oracles.h
/// The three oracle classes of the differential-testing subsystem:
///
///  1. differential execution — the optimized executor (sequential,
///     pooled, column-cached) must produce tuple-identical results to the
///     Fig.-7 evaluator in dsl/eval *and* to the independent naive
///     reference evaluator in dsl/reference_eval;
///  2. round-trip properties — writer∘parser is the identity on
///     parser-image HDTs (XML and JSON) and printer∘parser is the
///     identity on DSL programs;
///  3. synthesis soundness — synthesizing from (d, ⟦P⟧d) yields a program
///     that reproduces ⟦P⟧d on d; the check is then repeated on an
///     enlarged d' with its re-derived example table (d', ⟦P⟧d').
///
/// Every check returns a CheckResult whose failure string is
/// self-contained (document dump + program text + both outputs), so a
/// test can print it together with the generating seed as a replayable
/// reproducer.

namespace mitra::common {
class ThreadPool;
}  // namespace mitra::common

namespace mitra::testing {

struct CheckResult {
  bool ok = true;
  /// True when the generated case was vacuous for this oracle (e.g. the
  /// derived example table is empty, so synthesis has nothing to learn
  /// from). Skipped cases count toward neither pass nor fail.
  bool skipped = false;
  std::string failure;

  static CheckResult Pass() { return {}; }
  static CheckResult Skip() { return {true, true, {}}; }
  static CheckResult Fail(std::string msg) {
    return {false, false, std::move(msg)};
  }
};

/// Oracle 1: all execution paths agree on `program` over `tree`.
/// Compares, as sorted tuple multisets: the reference evaluator, the
/// Fig.-7 evaluator, the optimized executor (sequential), the optimized
/// executor on `pool` (when non-null), and the optimized executor with a
/// shared ColumnCache (run twice, so the second run exercises hits).
/// Additionally requires the pooled tuple *sequence* to be identical to
/// the sequential one (the parallel merge is order-preserving).
CheckResult CheckExecutionEquivalence(const hdt::Hdt& tree,
                                      const dsl::Program& program,
                                      common::ThreadPool* pool = nullptr);

/// Oracle 2a: XML writer∘parser identity on a parser-image tree, plus
/// write-normal-form idempotence, for pretty and compact output.
CheckResult CheckXmlRoundTrip(const hdt::Hdt& tree);

/// Oracle 2b: JSON writer∘parser identity, same structure as 2a.
CheckResult CheckJsonRoundTrip(const hdt::Hdt& tree);

/// Oracle 2c: DSL printer∘parser identity (exact AST equality).
CheckResult CheckDslRoundTrip(const dsl::Program& program);

/// Oracle 3: synthesis soundness. Derives ⟦P⟧d, synthesizes from the
/// example, and checks the result reproduces ⟦P⟧d on d; then enlarges d
/// to d' (from *rng, which must be seeded deterministically), derives
/// ⟦P⟧d', re-synthesizes from the enlarged example, and checks that
/// result on d'. (The program learned from d alone is *not* required to
/// match on d': when a cheaper program agrees on d and diverges on d',
/// Occam ranking legitimately picks it — only the enlarged example pins
/// the behavior down.) Skips cases whose derived table is empty,
/// oversized (> 24 rows), or contains nil-data cells (not learnable
/// targets, §4).
CheckResult CheckSynthesisSoundness(const hdt::Hdt& tree,
                                    const dsl::Program& program, Rng* rng,
                                    double time_limit_seconds = 20.0);

}  // namespace mitra::testing

#endif  // MITRA_TESTING_ORACLES_H_
