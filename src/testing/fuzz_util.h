#ifndef MITRA_TESTING_FUZZ_UTIL_H_
#define MITRA_TESTING_FUZZ_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "testing/rng.h"

/// \file fuzz_util.h
/// Shared machinery of the parser fuzz drivers (tools/fuzz_*.cc): one
/// entry point per target with the libFuzzer contract (return 0, abort on
/// property violation), plus a deterministic byte mutator for the
/// standalone seed-corpus drivers.
///
/// The targets do more than "don't crash": whenever the input parses,
/// they re-serialize and re-parse, and abort on a round-trip violation —
/// so the fuzzers exercise the writers and the printers as oracles, not
/// just the parsers.

namespace mitra::testing {

enum class FuzzTarget {
  kXml,   ///< xml::ParseXml + WriteXml normal-form idempotence
  kJson,  ///< json::ParseJson + WriteJson normal-form idempotence
  kDsl,   ///< dsl::ParseProgram + ToString exact round-trip
};

/// Runs one fuzz input through the target parser and its round-trip
/// oracle. Returns 0 (the libFuzzer convention); calls abort() with a
/// diagnostic on stderr when a property is violated.
int RunFuzzInput(FuzzTarget target, const uint8_t* data, size_t size);

/// Applies one random byte-level mutation (bit flip, overwrite, insert,
/// erase, duplicate, or dictionary-token splice) to `buf` in place.
void MutateBytes(Rng* rng, std::string* buf);

}  // namespace mitra::testing

#endif  // MITRA_TESTING_FUZZ_UTIL_H_
