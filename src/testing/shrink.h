#ifndef MITRA_TESTING_SHRINK_H_
#define MITRA_TESTING_SHRINK_H_

#include <functional>
#include <string>

#include "dsl/ast.h"
#include "hdt/hdt.h"

/// \file shrink.h
/// Greedy shrinker for failing (document, program) cases. Given a
/// predicate that re-runs the failing oracle, it repeatedly tries
/// structure-removing edits — drop a document subtree, drop a DNF clause
/// or literal, drop an atom, drop a column-extractor or node-extractor
/// step — and keeps any edit under which the case still fails, until a
/// fixpoint. The result is a small reproducer to embed in a bug report
/// or regression test.

namespace mitra::testing {

/// Returns true when the (document, program) case still exhibits the
/// failure being minimized.
using FailurePredicate =
    std::function<bool(const hdt::Hdt&, const dsl::Program&)>;

struct ShrunkCase {
  hdt::Hdt doc;
  dsl::Program program;
  /// Number of accepted shrink edits.
  int edits = 0;
};

/// Minimizes a failing case. `still_fails(doc, program)` must be true for
/// the input pair; every returned pair also satisfies it. `max_edits`
/// bounds the work (each candidate edit costs one predicate evaluation).
ShrunkCase ShrinkCase(const hdt::Hdt& doc, const dsl::Program& program,
                      const FailurePredicate& still_fails,
                      int max_edits = 400);

/// Renders a shrunk case as a replayable report: the document as both a
/// debug tree and XML text, and the program in concrete syntax.
std::string DescribeCase(const hdt::Hdt& doc, const dsl::Program& program);

}  // namespace mitra::testing

#endif  // MITRA_TESTING_SHRINK_H_
