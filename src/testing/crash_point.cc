#include "testing/crash_point.h"

namespace mitra::test {

Status CrashPointFileSystem::DeadStatus(const std::string& path,
                                        const char* op) const {
  // kUnavailable, like a real dead process's I/O: the pipeline's retry
  // loop may re-attempt, and every re-attempt fails the same way.
  return Status::Unavailable(std::string("simulated crash: ") + op + " " +
                             path);
}

Status CrashPointFileSystem::OnMutation(const std::string& path,
                                        const char* op) {
  if (crashed_.load(std::memory_order_acquire)) return DeadStatus(path, op);
  const std::uint64_t n =
      mutations_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (crash_at_ != 0 && n >= crash_at_) {
    crashed_.store(true, std::memory_order_release);
    return DeadStatus(path, op);
  }
  return Status::OK();
}

Result<std::string> CrashPointFileSystem::ReadFile(const std::string& path) {
  if (crashed()) return DeadStatus(path, "read");
  return base_->ReadFile(path);
}

Status CrashPointFileSystem::WriteFile(const std::string& path,
                                       const std::string& content) {
  MITRA_RETURN_IF_ERROR(OnMutation(path, "write"));
  return base_->WriteFile(path, content);
}

Result<std::vector<std::string>> CrashPointFileSystem::ListDir(
    const std::string& dir) {
  if (crashed()) return DeadStatus(dir, "list");
  return base_->ListDir(dir);
}

bool CrashPointFileSystem::Exists(const std::string& path) {
  if (crashed()) return false;
  return base_->Exists(path);
}

Status CrashPointFileSystem::Remove(const std::string& path) {
  MITRA_RETURN_IF_ERROR(OnMutation(path, "remove"));
  return base_->Remove(path);
}

Status CrashPointFileSystem::Rename(const std::string& from,
                                    const std::string& to) {
  MITRA_RETURN_IF_ERROR(OnMutation(to, "rename"));
  return base_->Rename(from, to);
}

}  // namespace mitra::test
