# Empty compiler generated dependencies file for mitra_common.
# This may be replaced when dependencies are built.
