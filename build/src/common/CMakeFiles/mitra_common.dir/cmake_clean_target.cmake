file(REMOVE_RECURSE
  "libmitra_common.a"
)
