file(REMOVE_RECURSE
  "CMakeFiles/mitra_common.dir/csv.cc.o"
  "CMakeFiles/mitra_common.dir/csv.cc.o.d"
  "CMakeFiles/mitra_common.dir/status.cc.o"
  "CMakeFiles/mitra_common.dir/status.cc.o.d"
  "CMakeFiles/mitra_common.dir/strings.cc.o"
  "CMakeFiles/mitra_common.dir/strings.cc.o.d"
  "libmitra_common.a"
  "libmitra_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitra_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
