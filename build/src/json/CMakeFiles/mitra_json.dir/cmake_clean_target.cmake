file(REMOVE_RECURSE
  "libmitra_json.a"
)
