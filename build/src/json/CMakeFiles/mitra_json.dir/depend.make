# Empty dependencies file for mitra_json.
# This may be replaced when dependencies are built.
