file(REMOVE_RECURSE
  "CMakeFiles/mitra_json.dir/js_codegen.cc.o"
  "CMakeFiles/mitra_json.dir/js_codegen.cc.o.d"
  "CMakeFiles/mitra_json.dir/json_parser.cc.o"
  "CMakeFiles/mitra_json.dir/json_parser.cc.o.d"
  "CMakeFiles/mitra_json.dir/json_writer.cc.o"
  "CMakeFiles/mitra_json.dir/json_writer.cc.o.d"
  "libmitra_json.a"
  "libmitra_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitra_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
