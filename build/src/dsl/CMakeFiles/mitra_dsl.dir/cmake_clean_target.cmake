file(REMOVE_RECURSE
  "libmitra_dsl.a"
)
