file(REMOVE_RECURSE
  "CMakeFiles/mitra_dsl.dir/ast.cc.o"
  "CMakeFiles/mitra_dsl.dir/ast.cc.o.d"
  "CMakeFiles/mitra_dsl.dir/eval.cc.o"
  "CMakeFiles/mitra_dsl.dir/eval.cc.o.d"
  "CMakeFiles/mitra_dsl.dir/parser.cc.o"
  "CMakeFiles/mitra_dsl.dir/parser.cc.o.d"
  "libmitra_dsl.a"
  "libmitra_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitra_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
