
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/ast.cc" "src/dsl/CMakeFiles/mitra_dsl.dir/ast.cc.o" "gcc" "src/dsl/CMakeFiles/mitra_dsl.dir/ast.cc.o.d"
  "/root/repo/src/dsl/eval.cc" "src/dsl/CMakeFiles/mitra_dsl.dir/eval.cc.o" "gcc" "src/dsl/CMakeFiles/mitra_dsl.dir/eval.cc.o.d"
  "/root/repo/src/dsl/parser.cc" "src/dsl/CMakeFiles/mitra_dsl.dir/parser.cc.o" "gcc" "src/dsl/CMakeFiles/mitra_dsl.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mitra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hdt/CMakeFiles/mitra_hdt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
