# Empty compiler generated dependencies file for mitra_dsl.
# This may be replaced when dependencies are built.
