# Empty compiler generated dependencies file for mitra_hdt.
# This may be replaced when dependencies are built.
