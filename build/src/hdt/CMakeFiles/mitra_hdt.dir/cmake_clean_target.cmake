file(REMOVE_RECURSE
  "libmitra_hdt.a"
)
