file(REMOVE_RECURSE
  "CMakeFiles/mitra_hdt.dir/hdt.cc.o"
  "CMakeFiles/mitra_hdt.dir/hdt.cc.o.d"
  "CMakeFiles/mitra_hdt.dir/table.cc.o"
  "CMakeFiles/mitra_hdt.dir/table.cc.o.d"
  "libmitra_hdt.a"
  "libmitra_hdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitra_hdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
