file(REMOVE_RECURSE
  "libmitra_db.a"
)
