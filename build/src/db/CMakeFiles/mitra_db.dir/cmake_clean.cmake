file(REMOVE_RECURSE
  "CMakeFiles/mitra_db.dir/migrator.cc.o"
  "CMakeFiles/mitra_db.dir/migrator.cc.o.d"
  "CMakeFiles/mitra_db.dir/schema.cc.o"
  "CMakeFiles/mitra_db.dir/schema.cc.o.d"
  "CMakeFiles/mitra_db.dir/sql_codegen.cc.o"
  "CMakeFiles/mitra_db.dir/sql_codegen.cc.o.d"
  "libmitra_db.a"
  "libmitra_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitra_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
