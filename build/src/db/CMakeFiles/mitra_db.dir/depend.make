# Empty dependencies file for mitra_db.
# This may be replaced when dependencies are built.
