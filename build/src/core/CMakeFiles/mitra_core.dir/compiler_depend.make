# Empty compiler generated dependencies file for mitra_core.
# This may be replaced when dependencies are built.
