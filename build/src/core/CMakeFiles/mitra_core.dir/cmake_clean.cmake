file(REMOVE_RECURSE
  "CMakeFiles/mitra_core.dir/column_learner.cc.o"
  "CMakeFiles/mitra_core.dir/column_learner.cc.o.d"
  "CMakeFiles/mitra_core.dir/dfa.cc.o"
  "CMakeFiles/mitra_core.dir/dfa.cc.o.d"
  "CMakeFiles/mitra_core.dir/executor.cc.o"
  "CMakeFiles/mitra_core.dir/executor.cc.o.d"
  "CMakeFiles/mitra_core.dir/node_extractor_enum.cc.o"
  "CMakeFiles/mitra_core.dir/node_extractor_enum.cc.o.d"
  "CMakeFiles/mitra_core.dir/predicate_learner.cc.o"
  "CMakeFiles/mitra_core.dir/predicate_learner.cc.o.d"
  "CMakeFiles/mitra_core.dir/predicate_universe.cc.o"
  "CMakeFiles/mitra_core.dir/predicate_universe.cc.o.d"
  "CMakeFiles/mitra_core.dir/qm.cc.o"
  "CMakeFiles/mitra_core.dir/qm.cc.o.d"
  "CMakeFiles/mitra_core.dir/set_cover.cc.o"
  "CMakeFiles/mitra_core.dir/set_cover.cc.o.d"
  "CMakeFiles/mitra_core.dir/synthesizer.cc.o"
  "CMakeFiles/mitra_core.dir/synthesizer.cc.o.d"
  "libmitra_core.a"
  "libmitra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
