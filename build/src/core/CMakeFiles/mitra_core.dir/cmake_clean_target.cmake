file(REMOVE_RECURSE
  "libmitra_core.a"
)
