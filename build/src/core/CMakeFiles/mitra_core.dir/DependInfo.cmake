
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/column_learner.cc" "src/core/CMakeFiles/mitra_core.dir/column_learner.cc.o" "gcc" "src/core/CMakeFiles/mitra_core.dir/column_learner.cc.o.d"
  "/root/repo/src/core/dfa.cc" "src/core/CMakeFiles/mitra_core.dir/dfa.cc.o" "gcc" "src/core/CMakeFiles/mitra_core.dir/dfa.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/core/CMakeFiles/mitra_core.dir/executor.cc.o" "gcc" "src/core/CMakeFiles/mitra_core.dir/executor.cc.o.d"
  "/root/repo/src/core/node_extractor_enum.cc" "src/core/CMakeFiles/mitra_core.dir/node_extractor_enum.cc.o" "gcc" "src/core/CMakeFiles/mitra_core.dir/node_extractor_enum.cc.o.d"
  "/root/repo/src/core/predicate_learner.cc" "src/core/CMakeFiles/mitra_core.dir/predicate_learner.cc.o" "gcc" "src/core/CMakeFiles/mitra_core.dir/predicate_learner.cc.o.d"
  "/root/repo/src/core/predicate_universe.cc" "src/core/CMakeFiles/mitra_core.dir/predicate_universe.cc.o" "gcc" "src/core/CMakeFiles/mitra_core.dir/predicate_universe.cc.o.d"
  "/root/repo/src/core/qm.cc" "src/core/CMakeFiles/mitra_core.dir/qm.cc.o" "gcc" "src/core/CMakeFiles/mitra_core.dir/qm.cc.o.d"
  "/root/repo/src/core/set_cover.cc" "src/core/CMakeFiles/mitra_core.dir/set_cover.cc.o" "gcc" "src/core/CMakeFiles/mitra_core.dir/set_cover.cc.o.d"
  "/root/repo/src/core/synthesizer.cc" "src/core/CMakeFiles/mitra_core.dir/synthesizer.cc.o" "gcc" "src/core/CMakeFiles/mitra_core.dir/synthesizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mitra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hdt/CMakeFiles/mitra_hdt.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/mitra_dsl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
