
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/corpus_json.cc" "src/workload/CMakeFiles/mitra_workload.dir/corpus_json.cc.o" "gcc" "src/workload/CMakeFiles/mitra_workload.dir/corpus_json.cc.o.d"
  "/root/repo/src/workload/corpus_xml.cc" "src/workload/CMakeFiles/mitra_workload.dir/corpus_xml.cc.o" "gcc" "src/workload/CMakeFiles/mitra_workload.dir/corpus_xml.cc.o.d"
  "/root/repo/src/workload/dataset_dblp.cc" "src/workload/CMakeFiles/mitra_workload.dir/dataset_dblp.cc.o" "gcc" "src/workload/CMakeFiles/mitra_workload.dir/dataset_dblp.cc.o.d"
  "/root/repo/src/workload/dataset_imdb.cc" "src/workload/CMakeFiles/mitra_workload.dir/dataset_imdb.cc.o" "gcc" "src/workload/CMakeFiles/mitra_workload.dir/dataset_imdb.cc.o.d"
  "/root/repo/src/workload/dataset_mondial.cc" "src/workload/CMakeFiles/mitra_workload.dir/dataset_mondial.cc.o" "gcc" "src/workload/CMakeFiles/mitra_workload.dir/dataset_mondial.cc.o.d"
  "/root/repo/src/workload/dataset_yelp.cc" "src/workload/CMakeFiles/mitra_workload.dir/dataset_yelp.cc.o" "gcc" "src/workload/CMakeFiles/mitra_workload.dir/dataset_yelp.cc.o.d"
  "/root/repo/src/workload/datasets.cc" "src/workload/CMakeFiles/mitra_workload.dir/datasets.cc.o" "gcc" "src/workload/CMakeFiles/mitra_workload.dir/datasets.cc.o.d"
  "/root/repo/src/workload/docgen.cc" "src/workload/CMakeFiles/mitra_workload.dir/docgen.cc.o" "gcc" "src/workload/CMakeFiles/mitra_workload.dir/docgen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/mitra_db.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mitra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mitra_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/mitra_json.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/mitra_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/hdt/CMakeFiles/mitra_hdt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mitra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
