# Empty dependencies file for mitra_workload.
# This may be replaced when dependencies are built.
