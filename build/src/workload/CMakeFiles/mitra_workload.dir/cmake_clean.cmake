file(REMOVE_RECURSE
  "CMakeFiles/mitra_workload.dir/corpus_json.cc.o"
  "CMakeFiles/mitra_workload.dir/corpus_json.cc.o.d"
  "CMakeFiles/mitra_workload.dir/corpus_xml.cc.o"
  "CMakeFiles/mitra_workload.dir/corpus_xml.cc.o.d"
  "CMakeFiles/mitra_workload.dir/dataset_dblp.cc.o"
  "CMakeFiles/mitra_workload.dir/dataset_dblp.cc.o.d"
  "CMakeFiles/mitra_workload.dir/dataset_imdb.cc.o"
  "CMakeFiles/mitra_workload.dir/dataset_imdb.cc.o.d"
  "CMakeFiles/mitra_workload.dir/dataset_mondial.cc.o"
  "CMakeFiles/mitra_workload.dir/dataset_mondial.cc.o.d"
  "CMakeFiles/mitra_workload.dir/dataset_yelp.cc.o"
  "CMakeFiles/mitra_workload.dir/dataset_yelp.cc.o.d"
  "CMakeFiles/mitra_workload.dir/datasets.cc.o"
  "CMakeFiles/mitra_workload.dir/datasets.cc.o.d"
  "CMakeFiles/mitra_workload.dir/docgen.cc.o"
  "CMakeFiles/mitra_workload.dir/docgen.cc.o.d"
  "libmitra_workload.a"
  "libmitra_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitra_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
