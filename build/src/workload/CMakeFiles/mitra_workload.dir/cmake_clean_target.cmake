file(REMOVE_RECURSE
  "libmitra_workload.a"
)
