# Empty compiler generated dependencies file for mitra_html.
# This may be replaced when dependencies are built.
