file(REMOVE_RECURSE
  "libmitra_html.a"
)
