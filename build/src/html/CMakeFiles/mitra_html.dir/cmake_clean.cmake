file(REMOVE_RECURSE
  "CMakeFiles/mitra_html.dir/html_parser.cc.o"
  "CMakeFiles/mitra_html.dir/html_parser.cc.o.d"
  "libmitra_html.a"
  "libmitra_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitra_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
