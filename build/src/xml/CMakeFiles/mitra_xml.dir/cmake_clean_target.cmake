file(REMOVE_RECURSE
  "libmitra_xml.a"
)
