file(REMOVE_RECURSE
  "CMakeFiles/mitra_xml.dir/xml_parser.cc.o"
  "CMakeFiles/mitra_xml.dir/xml_parser.cc.o.d"
  "CMakeFiles/mitra_xml.dir/xml_writer.cc.o"
  "CMakeFiles/mitra_xml.dir/xml_writer.cc.o.d"
  "CMakeFiles/mitra_xml.dir/xslt_codegen.cc.o"
  "CMakeFiles/mitra_xml.dir/xslt_codegen.cc.o.d"
  "CMakeFiles/mitra_xml.dir/xslt_interpreter.cc.o"
  "CMakeFiles/mitra_xml.dir/xslt_interpreter.cc.o.d"
  "libmitra_xml.a"
  "libmitra_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitra_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
