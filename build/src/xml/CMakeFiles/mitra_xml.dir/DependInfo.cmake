
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/xml_parser.cc" "src/xml/CMakeFiles/mitra_xml.dir/xml_parser.cc.o" "gcc" "src/xml/CMakeFiles/mitra_xml.dir/xml_parser.cc.o.d"
  "/root/repo/src/xml/xml_writer.cc" "src/xml/CMakeFiles/mitra_xml.dir/xml_writer.cc.o" "gcc" "src/xml/CMakeFiles/mitra_xml.dir/xml_writer.cc.o.d"
  "/root/repo/src/xml/xslt_codegen.cc" "src/xml/CMakeFiles/mitra_xml.dir/xslt_codegen.cc.o" "gcc" "src/xml/CMakeFiles/mitra_xml.dir/xslt_codegen.cc.o.d"
  "/root/repo/src/xml/xslt_interpreter.cc" "src/xml/CMakeFiles/mitra_xml.dir/xslt_interpreter.cc.o" "gcc" "src/xml/CMakeFiles/mitra_xml.dir/xslt_interpreter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mitra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hdt/CMakeFiles/mitra_hdt.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/mitra_dsl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
