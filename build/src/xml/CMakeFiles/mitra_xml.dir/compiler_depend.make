# Empty compiler generated dependencies file for mitra_xml.
# This may be replaced when dependencies are built.
