file(REMOVE_RECURSE
  "CMakeFiles/mitra.dir/mitra_cli.cc.o"
  "CMakeFiles/mitra.dir/mitra_cli.cc.o.d"
  "mitra"
  "mitra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
