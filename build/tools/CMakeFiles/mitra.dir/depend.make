# Empty dependencies file for mitra.
# This may be replaced when dependencies are built.
