# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/hdt_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/xml_parser_test[1]_include.cmake")
include("/root/repo/build/tests/json_parser_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_eval_test[1]_include.cmake")
include("/root/repo/build/tests/set_cover_test[1]_include.cmake")
include("/root/repo/build/tests/qm_test[1]_include.cmake")
include("/root/repo/build/tests/dfa_test[1]_include.cmake")
include("/root/repo/build/tests/node_extractor_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_learner_test[1]_include.cmake")
include("/root/repo/build/tests/synthesizer_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_test[1]_include.cmake")
include("/root/repo/build/tests/docgen_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_parser_test[1]_include.cmake")
include("/root/repo/build/tests/sql_codegen_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/html_parser_test[1]_include.cmake")
include("/root/repo/build/tests/js_execution_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/xslt_execution_test[1]_include.cmake")
