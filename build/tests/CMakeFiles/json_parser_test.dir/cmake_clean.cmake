file(REMOVE_RECURSE
  "CMakeFiles/json_parser_test.dir/json_parser_test.cc.o"
  "CMakeFiles/json_parser_test.dir/json_parser_test.cc.o.d"
  "json_parser_test"
  "json_parser_test.pdb"
  "json_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
