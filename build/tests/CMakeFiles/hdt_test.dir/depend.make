# Empty dependencies file for hdt_test.
# This may be replaced when dependencies are built.
