file(REMOVE_RECURSE
  "CMakeFiles/hdt_test.dir/hdt_test.cc.o"
  "CMakeFiles/hdt_test.dir/hdt_test.cc.o.d"
  "hdt_test"
  "hdt_test.pdb"
  "hdt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
