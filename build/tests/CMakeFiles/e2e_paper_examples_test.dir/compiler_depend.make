# Empty compiler generated dependencies file for e2e_paper_examples_test.
# This may be replaced when dependencies are built.
