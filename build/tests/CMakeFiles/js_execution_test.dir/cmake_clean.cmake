file(REMOVE_RECURSE
  "CMakeFiles/js_execution_test.dir/js_execution_test.cc.o"
  "CMakeFiles/js_execution_test.dir/js_execution_test.cc.o.d"
  "js_execution_test"
  "js_execution_test.pdb"
  "js_execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
