# Empty compiler generated dependencies file for js_execution_test.
# This may be replaced when dependencies are built.
