# Empty compiler generated dependencies file for docgen_test.
# This may be replaced when dependencies are built.
