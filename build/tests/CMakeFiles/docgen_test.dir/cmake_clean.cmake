file(REMOVE_RECURSE
  "CMakeFiles/docgen_test.dir/docgen_test.cc.o"
  "CMakeFiles/docgen_test.dir/docgen_test.cc.o.d"
  "docgen_test"
  "docgen_test.pdb"
  "docgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
