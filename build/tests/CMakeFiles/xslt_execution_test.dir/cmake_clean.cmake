file(REMOVE_RECURSE
  "CMakeFiles/xslt_execution_test.dir/xslt_execution_test.cc.o"
  "CMakeFiles/xslt_execution_test.dir/xslt_execution_test.cc.o.d"
  "xslt_execution_test"
  "xslt_execution_test.pdb"
  "xslt_execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xslt_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
