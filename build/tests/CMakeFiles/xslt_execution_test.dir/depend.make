# Empty dependencies file for xslt_execution_test.
# This may be replaced when dependencies are built.
