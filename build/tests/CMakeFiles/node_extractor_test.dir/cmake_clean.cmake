file(REMOVE_RECURSE
  "CMakeFiles/node_extractor_test.dir/node_extractor_test.cc.o"
  "CMakeFiles/node_extractor_test.dir/node_extractor_test.cc.o.d"
  "node_extractor_test"
  "node_extractor_test.pdb"
  "node_extractor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
