file(REMOVE_RECURSE
  "CMakeFiles/dsl_eval_test.dir/dsl_eval_test.cc.o"
  "CMakeFiles/dsl_eval_test.dir/dsl_eval_test.cc.o.d"
  "dsl_eval_test"
  "dsl_eval_test.pdb"
  "dsl_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
