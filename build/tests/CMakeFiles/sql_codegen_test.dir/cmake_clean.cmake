file(REMOVE_RECURSE
  "CMakeFiles/sql_codegen_test.dir/sql_codegen_test.cc.o"
  "CMakeFiles/sql_codegen_test.dir/sql_codegen_test.cc.o.d"
  "sql_codegen_test"
  "sql_codegen_test.pdb"
  "sql_codegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
