file(REMOVE_RECURSE
  "CMakeFiles/predicate_learner_test.dir/predicate_learner_test.cc.o"
  "CMakeFiles/predicate_learner_test.dir/predicate_learner_test.cc.o.d"
  "predicate_learner_test"
  "predicate_learner_test.pdb"
  "predicate_learner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
