file(REMOVE_RECURSE
  "CMakeFiles/dblp_to_database.dir/dblp_to_database.cpp.o"
  "CMakeFiles/dblp_to_database.dir/dblp_to_database.cpp.o.d"
  "dblp_to_database"
  "dblp_to_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_to_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
