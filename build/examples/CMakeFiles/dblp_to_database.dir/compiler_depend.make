# Empty compiler generated dependencies file for dblp_to_database.
# This may be replaced when dependencies are built.
