# Empty compiler generated dependencies file for json_orders.
# This may be replaced when dependencies are built.
