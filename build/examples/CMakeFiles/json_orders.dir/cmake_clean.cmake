file(REMOVE_RECURSE
  "CMakeFiles/json_orders.dir/json_orders.cpp.o"
  "CMakeFiles/json_orders.dir/json_orders.cpp.o.d"
  "json_orders"
  "json_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
