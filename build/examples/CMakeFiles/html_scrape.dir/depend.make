# Empty dependencies file for html_scrape.
# This may be replaced when dependencies are built.
