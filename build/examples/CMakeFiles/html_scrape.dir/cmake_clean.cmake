file(REMOVE_RECURSE
  "CMakeFiles/html_scrape.dir/html_scrape.cpp.o"
  "CMakeFiles/html_scrape.dir/html_scrape.cpp.o.d"
  "html_scrape"
  "html_scrape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_scrape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
