# Empty dependencies file for bench_ablation_ilp.
# This may be replaced when dependencies are built.
