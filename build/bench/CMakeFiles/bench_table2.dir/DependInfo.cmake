
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2.cc" "bench/CMakeFiles/bench_table2.dir/bench_table2.cc.o" "gcc" "bench/CMakeFiles/bench_table2.dir/bench_table2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/mitra_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/mitra_db.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mitra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mitra_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/mitra_json.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/mitra_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/hdt/CMakeFiles/mitra_hdt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mitra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
